"""Leaf-to-root contraction of :class:`~repro.engine.jobs.TreeJob` instances.

Acceptance of a tree job is the expectation, over the independent per-node
randomness (symmetrization bits, router assignments), of the product of all
local test factors.  Because every factor couples a node only with its
children, the expectation factorizes leaf-to-root: each node passes its
parent a small vector ``W[choice]`` — the probability-weighted acceptance of
its whole subtree, marginalized to the one piece of local randomness the
parent can still see (which register is forwarded up, or which register is
kept).  This replaces the exponential joint-pattern enumeration of the
pre-engine protocol code with ``O(sum_v choices_v * prod_children choices)``
work.

Two evaluators share the node semantics:

:func:`tree_acceptance_probability`
    The scalar reference: one job, plain Python loops and ``np.vdot``
    overlaps — the semantics the batched path is tested against.

:func:`tree_probabilities_batched`
    Groups jobs by structure signature, stacks each group's registers into
    one array per tensor factor, computes every overlap of the group with a
    single batched Gram product per factor (the PR-1 chain trick), and runs
    the same leaf-to-root recursion vectorized over the batch axis.  The
    Gram products route through :mod:`repro.engine.kernels`, so they run on
    any :class:`~repro.engine.array_ops.ArrayModule` (numpy / torch / cupy /
    the transfer-counting mock) in the configured contraction dtype; the
    recursion itself accumulates in host float64.

Noisy jobs (a :class:`~repro.engine.jobs.TreeNoise` annotation) evaluate on
a density-matrix generalization of the same contraction: every register
row becomes two density matrices — its *kept* form (node channel applied)
and its *sent* form (up-link channel applied on top) — squared overlaps
become Hilbert-Schmidt traces ``Tr(rho sigma)`` (computed for a whole batch
by the same Gram matmul on vectorized densities), permutation tests use the
cycle expansion ``Tr(P_sym rho_1 x ... x rho_k) = (1/k!) sum_pi prod_cycles
Tr(prod rho)``, and every local test factor passes through the readout-error
flip.  The scalar reference applies channels through their Kraus sums while
the batched path routes through superoperators — an independent cross-check
exercised by the noise parity tests.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations as iter_permutations
from itertools import product as iter_product
from math import factorial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.array_ops import ArrayModule, get_array_module, resolve_dtype
from repro.engine.jobs import (
    MEAS_DENSE,
    MEAS_DIAGONAL,
    MEAS_MATCH_ANY,
    MEAS_PROJECTOR,
    MEAS_SWAP,
    NODE_FIXED,
    NODE_SYM,
    TEST_FANOUT,
    TEST_MEASURE,
    TEST_NONE,
    LeafMeasurement,
    TreeJob,
    assignment_count,
    group_tree_jobs_by_signature,
    router_assignments,
)
from repro.engine import kernels
from repro.exceptions import ProtocolError
from repro.quantum.channels import flip_probability


def _threshold_tail(match_probabilities: np.ndarray, threshold: int) -> np.ndarray:
    """``P[#successes >= threshold]`` of independent checks, vectorized.

    ``match_probabilities`` has shape ``(F,) + tail``; the Poisson-binomial
    recursion runs over the first axis and broadcasts over the rest.
    """
    probs = np.asarray(match_probabilities, dtype=np.float64)
    distribution = np.zeros((probs.shape[0] + 1,) + probs.shape[1:])
    distribution[0] = 1.0
    for p in probs:
        shifted = np.zeros_like(distribution)
        shifted[1:] += distribution[:-1] * p
        shifted[:-1] += distribution[:-1] * (1.0 - p)
        distribution = shifted
    return np.clip(distribution[threshold:].sum(axis=0), 0.0, 1.0)


def _up_choices(job: TreeJob, node: int) -> List[Tuple[float, Optional[int], Optional[int]]]:
    """Per-choice ``(probability, kept_row, forwarded_row)`` of an up-family node."""
    slots = job.slots[node]
    if job.kinds[node] == NODE_SYM:
        return [(0.5, slots[0], slots[1]), (0.5, slots[1], slots[0])]
    row = slots[0] if slots else None
    return [(1.0, row, row)]


def _require_row(row: Optional[int], node: int) -> int:
    if row is None:
        raise ProtocolError(f"tree node {node} holds no register to forward")
    return row


def _is_down_family(job: TreeJob) -> bool:
    return any(test == TEST_FANOUT for test in job.tests)


# --------------------------------------------------------------------------
# Scalar reference
# --------------------------------------------------------------------------


def _overlap_sq(job: TreeJob, row_a: int, row_b: int) -> float:
    value = 1.0
    for stack in job.factors:
        # Host-side allowlist: the scalar reference path checks the batched
        # kernels and never runs on a device backend.
        value *= float(abs(np.vdot(stack[row_a], stack[row_b])) ** 2)  # repro-lint: disable=device-purity
    return value


def _swap_accept(job: TreeJob, row_a: int, row_b: int) -> float:
    return 0.5 + 0.5 * _overlap_sq(job, row_a, row_b)


def _perm_accept(job: TreeJob, rows: Sequence[int]) -> float:
    if len(rows) == 2:
        return _swap_accept(job, rows[0], rows[1])
    from repro.quantum.permutation_test import (
        permutation_test_accept_probability_product,
    )

    kets = [job.factors[0][row] for row in rows]
    return permutation_test_accept_probability_product(kets)


def _measure_value(job: TreeJob, measurement: LeafMeasurement, row: int) -> float:
    if measurement.kind == MEAS_DENSE:
        state = job.factors[0][row]
        # Host-side allowlist (here and below): scalar reference path.
        return float(np.real(np.vdot(state, measurement.operator @ state)))  # repro-lint: disable=device-purity
    if measurement.kind == MEAS_DIAGONAL:
        state = job.factors[0][row]
        return float(np.real(np.sum(measurement.operator * np.abs(state) ** 2)))
    target = measurement.target_row
    matches = [
        float(abs(np.vdot(stack[target], stack[row])) ** 2) for stack in job.factors  # repro-lint: disable=device-purity
    ]
    if measurement.kind == MEAS_PROJECTOR:
        return float(np.prod(matches))
    if measurement.kind == MEAS_SWAP:
        return 0.5 + 0.5 * float(np.prod(matches))
    if measurement.kind == MEAS_MATCH_ANY:
        return 1.0 - float(np.prod([1.0 - m for m in matches]))
    return float(_threshold_tail(np.array(matches), measurement.threshold))


def _up_scalar(job: TreeJob) -> float:
    children = job.children
    choices = [_up_choices(job, node) for node in range(job.num_nodes)]
    weights: List[Optional[List[float]]] = [None] * job.num_nodes
    for node in range(job.num_nodes - 1, -1, -1):
        ch = children[node]
        test = job.tests[node]
        node_weights: List[float] = []
        for probability, kept, _ in choices[node]:
            if not ch or test == TEST_NONE:
                value = probability
                for c in ch:
                    value *= sum(weights[c])
            elif test == TEST_MEASURE:
                c = ch[0]
                total = 0.0
                for j, (_, _, forwarded) in enumerate(choices[c]):
                    total += (
                        _measure_value(job, job.measurements[node], _require_row(forwarded, c))
                        * weights[c][j]
                    )
                value = probability * total
            else:  # TEST_PERM
                total = 0.0
                for combo in iter_product(*[range(len(choices[c])) for c in ch]):
                    rows = [_require_row(kept, node)]
                    term = 1.0
                    for c, j in zip(ch, combo):
                        rows.append(_require_row(choices[c][j][2], c))
                        term *= weights[c][j]
                    if term != 0.0:
                        term *= _perm_accept(job, rows)
                    total += term
                value = probability * total
            node_weights.append(value)
        weights[node] = node_weights
    return float(min(max(sum(weights[0]), 0.0), 1.0))


def _down_scalar(job: TreeJob) -> float:
    children = job.children
    weights: List[Optional[np.ndarray]] = [None] * job.num_nodes
    for node in range(job.num_nodes - 1, -1, -1):
        ch = children[node]
        if not ch:
            continue  # leaves are consumed by their fan-out parent
        slots = job.slots[node]
        # messages[i][s]: acceptance of child ch[i]'s subtree when this node
        # sends it register slot s.
        messages = []
        for c in ch:
            per_slot = np.empty(len(slots))
            for s, row in enumerate(slots):
                if not children[c]:
                    measurement = job.measurements[c]
                    per_slot[s] = (
                        _measure_value(job, measurement, row) if measurement else 1.0
                    )
                else:
                    kept_rows = job.slots[c]
                    per_slot[s] = sum(
                        _swap_accept(job, row, kept_rows[j]) * weights[c][j]
                        for j in range(len(kept_rows))
                    )
            messages.append(per_slot)
        if job.kinds[node] == NODE_FIXED:
            value = 1.0
            for per_slot in messages:
                value *= per_slot[0]
            weights[node] = np.array([value])
        else:  # router: marginalize the uniform assignment to the kept slot
            bundle = len(slots)
            marginal = np.zeros(bundle)
            for assignment in router_assignments(bundle):
                term = 1.0
                for i in range(len(ch)):
                    term *= messages[i][assignment[i]]
                marginal[assignment[-1]] += term
            weights[node] = marginal / assignment_count(bundle)
    return float(min(max(float(weights[0].sum()), 0.0), 1.0))


# --------------------------------------------------------------------------
# Noisy (density-matrix) evaluation
# --------------------------------------------------------------------------


def _row_owners(job: TreeJob) -> List[Optional[int]]:
    """The node owning each state row, for channel assignment.

    Register rows belong to the node whose slots hold them; a vector
    measurement's target row belongs to the measuring node, so that node's
    *node channel* models preparation noise of the verifier's reference
    state (target rows are only ever read in kept space — their sent form
    is never used, and measuring nodes forward nothing).
    """
    owners: List[Optional[int]] = [None] * job.factors[0].shape[0]
    for node, slots in enumerate(job.slots):
        for row in slots:
            owners[row] = node
    for node, measurement in enumerate(job.measurements):
        if measurement is not None and measurement.target_row is not None:
            owners[measurement.target_row] = node
    return owners


@lru_cache(maxsize=32)
def _permutation_cycle_sets(arity: int) -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
    """Cycle decomposition of every permutation of ``S_arity`` (cached)."""
    decompositions = []
    for permutation in iter_permutations(range(arity)):
        seen = [False] * arity
        cycles = []
        for start in range(arity):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            follow = permutation[start]
            while follow != start:
                cycle.append(follow)
                seen[follow] = True
                follow = permutation[follow]
            cycles.append(tuple(cycle))
        decompositions.append(tuple(cycles))
    return tuple(decompositions)


def _mixed_perm_accept(matrices: Sequence[np.ndarray]) -> float:
    """``Tr(P_sym rho_1 x ... x rho_k)`` via the permutation-cycle expansion.

    Each permutation contributes the product, over its cycles, of the trace
    of the densities multiplied along the cycle; length-1 cycles contribute
    ``Tr(rho) = 1`` (channels are trace preserving).  For pure states this
    reduces to the Gram-permanent formula of the noiseless path, and for
    ``k = 2`` to the SWAP-test value ``1/2 + 1/2 Tr(rho sigma)``.
    """
    arity = len(matrices)
    total = 0.0 + 0.0j
    for cycles in _permutation_cycle_sets(arity):
        term = 1.0 + 0.0j
        for cycle in cycles:
            if len(cycle) == 1:
                continue
            product = matrices[cycle[0]]
            for index in cycle[1:]:
                product = product @ matrices[index]
            # Host-side allowlist: scalar reference permanent.
            term *= np.trace(product)  # repro-lint: disable=device-purity
        total += term
    return float(np.clip(total.real / factorial(arity), 0.0, 1.0))


def _scalar_noisy_densities(job: TreeJob) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row *(kept, sent)* density matrices, via plain Kraus sums.

    ``kept[r]`` is the register after its owner's node channel; ``sent[r]``
    additionally passes the owner's up-link channel.  A measurement target
    row is owned by its measuring node (see :func:`_row_owners`), so that
    node's node channel models preparation noise of the verifier's
    reference state; only the target's *sent* form is never used.
    """
    states = job.factors[0]
    num_rows, dim = states.shape
    owners = _row_owners(job)
    # Host-side allowlist: Kraus channels act on host densities in exact
    # complex128 — the noisy path's accumulation half of the dtype policy.
    kept = np.empty((num_rows, dim, dim), dtype=np.complex128)  # repro-lint: disable=dtype-discipline
    sent = np.empty_like(kept)
    for row in range(num_rows):
        rho = np.outer(states[row], states[row].conj())  # repro-lint: disable=device-purity
        owner = owners[row]
        if owner is not None:
            node_channel = job.noise.node_channels[owner]
            if node_channel is not None:
                rho = node_channel.apply(rho)
        kept[row] = rho
        up_channel = job.noise.up_channels[owner] if owner is not None else None
        sent[row] = up_channel.apply(rho) if up_channel is not None else rho
    return kept, sent


def _noisy_measure_value(
    measurement: LeafMeasurement, rho: np.ndarray, kept: np.ndarray
) -> float:
    """One measurement accept factor on a density matrix (before readout flip)."""
    if measurement.kind == MEAS_DENSE:
        # Host-side allowlist (here and below): scalar noisy reference path.
        return float(np.trace(measurement.operator @ rho).real)  # repro-lint: disable=device-purity
    if measurement.kind == MEAS_DIAGONAL:
        return float(np.sum(measurement.operator * np.diag(rho)).real)
    match = float(np.trace(kept[measurement.target_row] @ rho).real)  # repro-lint: disable=device-purity
    if measurement.kind == MEAS_PROJECTOR:
        return match
    if measurement.kind == MEAS_SWAP:
        return 0.5 + 0.5 * match
    if measurement.kind == MEAS_MATCH_ANY:
        return match
    return float(_threshold_tail(np.array([match]), measurement.threshold))


def _up_scalar_noisy(job: TreeJob) -> float:
    """Scalar reference for noisy up-family jobs: densities plus readout flips."""
    kept_densities, sent_densities = _scalar_noisy_densities(job)
    error = job.noise.readout_error
    children = job.children
    choices = [_up_choices(job, node) for node in range(job.num_nodes)]
    weights: List[Optional[List[float]]] = [None] * job.num_nodes
    for node in range(job.num_nodes - 1, -1, -1):
        ch = children[node]
        test = job.tests[node]
        node_weights: List[float] = []
        for probability, kept, _ in choices[node]:
            if not ch or test == TEST_NONE:
                value = probability
                for c in ch:
                    value *= sum(weights[c])
            elif test == TEST_MEASURE:
                c = ch[0]
                total = 0.0
                for j, (_, _, forwarded) in enumerate(choices[c]):
                    accept = _noisy_measure_value(
                        job.measurements[node],
                        sent_densities[_require_row(forwarded, c)],
                        kept_densities,
                    )
                    total += flip_probability(accept, error) * weights[c][j]
                value = probability * total
            else:  # TEST_PERM
                total = 0.0
                for combo in iter_product(*[range(len(choices[c])) for c in ch]):
                    matrices = [kept_densities[_require_row(kept, node)]]
                    term = 1.0
                    for c, j in zip(ch, combo):
                        matrices.append(
                            sent_densities[_require_row(choices[c][j][2], c)]
                        )
                        term *= weights[c][j]
                    if term != 0.0:
                        term *= flip_probability(_mixed_perm_accept(matrices), error)
                    total += term
                value = probability * total
            node_weights.append(value)
        weights[node] = node_weights
    return float(min(max(sum(weights[0]), 0.0), 1.0))


def tree_acceptance_probability(job: TreeJob) -> float:
    """Exact acceptance probability of one tree job (scalar reference)."""
    if job.is_noisy:
        # Validation restricts noisy jobs to the up-forwarding family.
        return _up_scalar_noisy(job)
    if _is_down_family(job):
        return _down_scalar(job)
    return _up_scalar(job)


# --------------------------------------------------------------------------
# Batched evaluation
# --------------------------------------------------------------------------


class _GroupContext:
    """Stacked states and cached Gram products of one signature group.

    The heavy per-group products — the squared-overlap Grams per tensor
    factor, the Hilbert-Schmidt trace Gram of the noisy path, the dense
    measurement einsum — run through :mod:`repro.engine.kernels` on the
    supplied array module in the supplied contraction dtype; everything the
    recursion reads afterwards is host float64.

    In *noisy* mode (the group's jobs carry a :class:`~repro.engine.jobs.
    TreeNoise`) the context stacks, per job, the kept and sent density
    matrices of every register row — ``2 R`` rows of ``d x d`` densities,
    built through each job's own channel superoperators — and replaces the
    squared-overlap Gram with the Hilbert-Schmidt trace Gram
    ``Tr(rho_r rho_s)`` of the vectorized densities.  Rows ``R + r`` are the
    sent (up-link-transformed) forms; :meth:`sent_row` maps between the
    spaces.  All accept factors pass through the per-job readout flip.
    """

    def __init__(
        self,
        group: Sequence[TreeJob],
        xp: Optional[ArrayModule] = None,
        dtype: Optional[np.dtype] = None,
    ):
        self.group = group
        self.template = group[0]
        self.batch = len(group)
        self.xp = get_array_module(xp)
        self.dtype = resolve_dtype(dtype)
        self._dense_operators: Dict[int, np.ndarray] = {}
        self.noisy = self.template.is_noisy
        if self.noisy:
            self._init_noisy(group)
            return
        num_factors = self.template.num_factors
        self.stacks = [
            np.stack([job.factors[f] for job in group]) for f in range(num_factors)
        ]
        self.overlap_sq, self.cgram = kernels.batched_overlap_grams(
            self.xp, self.dtype, self.stacks
        )
        product = self.overlap_sq[0]
        for extra in self.overlap_sq[1:]:
            product = product * extra
        self.overlap_sq_product = product

    def _init_noisy(self, group: Sequence[TreeJob]) -> None:
        template = self.template
        num_rows, dim = template.factors[0].shape
        self.num_rows = num_rows
        owners = _row_owners(template)
        states = np.stack([job.factors[0] for job in group]).astype(
            self.dtype, copy=False
        )
        pure = states[:, :, :, None] * states.conj()[:, :, None, :]
        kept_grid = [
            [
                None if owner is None else job.noise.node_channels[owner]
                for owner in owners
            ]
            for job in group
        ]
        sent_grid = [
            [
                None if owner is None else job.noise.up_channels[owner]
                for owner in owners
            ]
            for job in group
        ]
        densities = np.empty(
            (self.batch, 2 * num_rows, dim, dim), dtype=self.dtype
        )
        kept = kernels.apply_noise_grid(kept_grid, pure, self.dtype)
        densities[:, :num_rows] = kept
        densities[:, num_rows:] = kernels.apply_noise_grid(sent_grid, kept, self.dtype)
        self.densities = densities
        # Tr(rho sigma) = vec(rho) . conj(vec(sigma)) for Hermitian matrices:
        # the same batched Gram matmul as the pure path, on density rows.
        self.trace_gram = kernels.batched_trace_gram(self.xp, self.dtype, densities)
        self.eps = np.array([job.noise.readout_error for job in group])
        self._cycle_traces: Dict[Tuple[int, ...], np.ndarray] = {}

    def sent_row(self, row: int) -> int:
        """The row index of a register's *sent* (up-link-transformed) form."""
        return row + self.num_rows if self.noisy else row

    def swap_accept(self, row_a: int, row_b: int) -> np.ndarray:
        if self.noisy:
            return flip_probability(
                0.5 + 0.5 * self.trace_gram[:, row_a, row_b], self.eps
            )
        return 0.5 + 0.5 * self.overlap_sq_product[:, row_a, row_b]

    def _cycle_trace(self, cycle_rows: Tuple[int, ...]) -> np.ndarray:
        """``Tr(prod rho)`` along one cycle, cached under its canonical rotation."""
        pivot = cycle_rows.index(min(cycle_rows))
        key = cycle_rows[pivot:] + cycle_rows[:pivot]
        cached = self._cycle_traces.get(key)
        if cached is None:
            product = self.densities[:, key[0]]
            for row in key[1:]:
                # Host-side allowlist: the noisy grid keeps densities on the
                # host (Kraus channels are host complex128 by design).
                product = np.matmul(product, self.densities[:, row])  # repro-lint: disable=device-purity
            cached = np.trace(product, axis1=1, axis2=2)  # repro-lint: disable=device-purity
            self._cycle_traces[key] = cached
        return cached

    def perm_accept(self, rows: Sequence[int]) -> np.ndarray:
        if self.noisy:
            # Dtype-policy allowlist (all four zeros/ones below): permanents
            # accumulate in host complex128 whatever the contraction dtype.
            total = np.zeros(self.batch, dtype=np.complex128)  # repro-lint: disable=dtype-discipline
            for cycles in _permutation_cycle_sets(len(rows)):
                term = np.ones(self.batch, dtype=np.complex128)  # repro-lint: disable=dtype-discipline
                for cycle in cycles:
                    if len(cycle) == 1:
                        continue  # trace-one densities (channels preserve trace)
                    term = term * self._cycle_trace(tuple(rows[i] for i in cycle))
                total += term
            accepts = np.clip(total.real / factorial(len(rows)), 0.0, 1.0)
            return flip_probability(accepts, self.eps)
        if len(rows) == 2:
            return self.swap_accept(rows[0], rows[1])
        total = np.zeros(self.batch, dtype=np.complex128)  # repro-lint: disable=dtype-discipline
        for permutation in iter_permutations(range(len(rows))):
            term = np.ones(self.batch, dtype=np.complex128)  # repro-lint: disable=dtype-discipline
            for i, j in enumerate(permutation):
                term = term * self.cgram[:, rows[i], rows[j]]
            total += term
        return np.clip(total.real / factorial(len(rows)), 0.0, 1.0)

    def _node_operators(self, node: int) -> np.ndarray:
        if node not in self._dense_operators:
            self._dense_operators[node] = np.stack(
                [job.measurements[node].operator for job in self.group]
            )
        return self._dense_operators[node]

    def measure(self, node: int, row: int) -> np.ndarray:
        if self.noisy:
            return self._measure_noisy(node, row)
        measurement = self.template.measurements[node]
        if measurement.kind == MEAS_DENSE:
            states = self.stacks[0][:, row]
            operators = self._node_operators(node)
            return kernels.batched_measure_dense(
                self.xp, self.dtype, states, operators
            )
        if measurement.kind == MEAS_DIAGONAL:
            states = self.stacks[0][:, row]
            diagonals = self._node_operators(node)
            return np.sum(diagonals.real * np.abs(states) ** 2, axis=1)
        target = measurement.target_row
        if measurement.kind == MEAS_PROJECTOR:
            return self.overlap_sq_product[:, row, target]
        if measurement.kind == MEAS_SWAP:
            return 0.5 + 0.5 * self.overlap_sq_product[:, row, target]
        matches = np.stack(
            [overlap[:, row, target] for overlap in self.overlap_sq]
        )  # (F, B)
        if measurement.kind == MEAS_MATCH_ANY:
            return 1.0 - np.prod(1.0 - matches, axis=0)
        return _threshold_tail(matches, measurement.threshold)

    def _measure_noisy(self, node: int, row: int) -> np.ndarray:
        """Measurement factors on density rows (``row`` is in extended space)."""
        measurement = self.template.measurements[node]
        if measurement.kind == MEAS_DENSE:
            operators = self._node_operators(node)
            # Host-side allowlist (both einsums): noisy densities stay host
            # complex128, so these traces are host contractions by design.
            values = np.einsum(  # repro-lint: disable=device-purity
                "bij,bji->b", operators, self.densities[:, row]
            ).real
        elif measurement.kind == MEAS_DIAGONAL:
            diagonals = self._node_operators(node)
            values = np.einsum(  # repro-lint: disable=device-purity
                "bi,bii->b", diagonals, self.densities[:, row]
            ).real
        else:
            match = self.trace_gram[:, row, measurement.target_row]
            if measurement.kind in (MEAS_PROJECTOR, MEAS_MATCH_ANY):
                values = match
            elif measurement.kind == MEAS_SWAP:
                values = 0.5 + 0.5 * match
            else:
                values = _threshold_tail(match[None, :], measurement.threshold)
        return flip_probability(values, self.eps)


def _up_batched(context: _GroupContext) -> np.ndarray:
    job = context.template
    batch = context.batch
    children = job.children
    choices = [_up_choices(job, node) for node in range(job.num_nodes)]
    weights: List[Optional[np.ndarray]] = [None] * job.num_nodes
    for node in range(job.num_nodes - 1, -1, -1):
        ch = children[node]
        test = job.tests[node]
        node_weights = np.empty((batch, len(choices[node])))
        if not ch or test == TEST_NONE:
            base = np.ones(batch)
            for c in ch:
                base = base * weights[c].sum(axis=1)
            for i, (probability, _, _) in enumerate(choices[node]):
                node_weights[:, i] = probability * base
        elif test == TEST_MEASURE:
            c = ch[0]
            total = np.zeros(batch)
            for j, (_, _, forwarded) in enumerate(choices[c]):
                total += (
                    context.measure(node, context.sent_row(_require_row(forwarded, c)))
                    * weights[c][:, j]
                )
            for i, (probability, _, _) in enumerate(choices[node]):
                node_weights[:, i] = probability * total
        else:  # TEST_PERM
            for i, (probability, kept, _) in enumerate(choices[node]):
                total = np.zeros(batch)
                for combo in iter_product(*[range(len(choices[c])) for c in ch]):
                    rows = [_require_row(kept, node)]
                    term = np.ones(batch)
                    for c, j in zip(ch, combo):
                        rows.append(context.sent_row(_require_row(choices[c][j][2], c)))
                        term = term * weights[c][:, j]
                    total += context.perm_accept(rows) * term
                node_weights[:, i] = probability * total
        weights[node] = node_weights
    return weights[0].sum(axis=1)


def _down_batched(context: _GroupContext) -> np.ndarray:
    job = context.template
    batch = context.batch
    children = job.children
    weights: List[Optional[np.ndarray]] = [None] * job.num_nodes
    for node in range(job.num_nodes - 1, -1, -1):
        ch = children[node]
        if not ch:
            continue
        slots = job.slots[node]
        messages = []
        for c in ch:
            per_slot = np.empty((batch, len(slots)))
            for s, row in enumerate(slots):
                if not children[c]:
                    measurement = job.measurements[c]
                    per_slot[:, s] = (
                        context.measure(c, row) if measurement is not None else 1.0
                    )
                else:
                    kept_rows = job.slots[c]
                    accumulated = np.zeros(batch)
                    for j, kept_row in enumerate(kept_rows):
                        accumulated += context.swap_accept(row, kept_row) * weights[c][:, j]
                    per_slot[:, s] = accumulated
            messages.append(per_slot)
        if job.kinds[node] == NODE_FIXED:
            value = np.ones(batch)
            for per_slot in messages:
                value = value * per_slot[:, 0]
            weights[node] = value[:, None]
        else:
            bundle = len(slots)
            marginal = np.zeros((batch, bundle))
            for assignment in router_assignments(bundle):
                term = np.ones(batch)
                for i in range(len(ch)):
                    term = term * messages[i][:, assignment[i]]
                marginal[:, assignment[-1]] += term
            weights[node] = marginal / assignment_count(bundle)
    return weights[0].sum(axis=1)


def tree_probabilities_batched(
    jobs: Sequence[TreeJob],
    xp: Optional[ArrayModule] = None,
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """Acceptance probabilities of many tree jobs, stacked by signature group."""
    xp = get_array_module(xp)
    dtype = resolve_dtype(dtype)
    results = np.empty(len(jobs), dtype=np.float64)
    for indices in group_tree_jobs_by_signature(jobs).values():
        context = _GroupContext([jobs[i] for i in indices], xp=xp, dtype=dtype)
        if _is_down_family(context.template):
            values = _down_batched(context)
        else:
            values = _up_batched(context)
        results[indices] = np.clip(values, 0.0, 1.0)
    return results
