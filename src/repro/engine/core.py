"""The :class:`Engine` facade protocols evaluate through.

An engine owns a :class:`~repro.engine.backends.SimulationBackend` and an
:class:`~repro.engine.cache.OperatorCache`.  Protocols hand it
:class:`~repro.engine.jobs.ChainProgram` objects (or plain scalar callables,
for the protocol families whose acceptance does not reduce to chains) and the
engine flattens every job into one backend call, so a batch of ``B`` protocol
invocations costs a handful of stacked contractions instead of ``B`` Python
loops.

A process-wide default engine is available through :func:`default_engine`;
its backend is selected by the ``REPRO_BACKEND`` environment variable
(``"transfer-matrix"`` when unset).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Hashable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.engine.backends import SimulationBackend, get_backend
from repro.engine.cache import OperatorCache
from repro.engine.jobs import ChainJob, ChainProgram

#: Environment variable selecting the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class Engine:
    """A simulation backend plus an operator cache, behind one facade."""

    def __init__(
        self,
        backend: Union[str, SimulationBackend, None] = None,
        cache: Optional[OperatorCache] = None,
    ):
        self._backend = get_backend(backend)
        self.cache = cache if cache is not None else OperatorCache()

    @property
    def backend(self) -> SimulationBackend:
        """The active simulation backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend."""
        return self._backend.name

    def with_backend(self, backend: Union[str, SimulationBackend]) -> "Engine":
        """A sibling engine on a different backend, sharing this engine's cache."""
        return Engine(backend=backend, cache=self.cache)

    # -- operator caching ----------------------------------------------------

    def cached_operator(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Memoize an operator under a hashable key (see :class:`OperatorCache`)."""
        return self.cache.get_or_build(key, builder)

    # -- evaluation ----------------------------------------------------------

    def chain_probabilities(self, jobs: Sequence[ChainJob]) -> np.ndarray:
        """Acceptance probabilities of a batch of chain jobs."""
        if not jobs:
            return np.zeros(0, dtype=np.float64)
        return self._backend.chain_probabilities(jobs)

    def evaluate_program(self, program: ChainProgram) -> float:
        """Value of a single chain program."""
        return program.combine(self.chain_probabilities(program.jobs))

    def evaluate_programs(self, programs: Sequence[ChainProgram]) -> np.ndarray:
        """Values of many programs, with all their jobs in one backend batch."""
        if all(program.is_single_unit_job for program in programs):
            # Common fast path (e.g. equality chains): one unit-weight job per
            # program, so the backend batch is already the answer.
            return self.chain_probabilities([program.jobs[0] for program in programs])
        all_jobs: list = []
        offsets = []
        for program in programs:
            offsets.append(len(all_jobs))
            all_jobs.extend(program.jobs)
        probabilities = self.chain_probabilities(all_jobs)
        values = np.empty(len(programs), dtype=np.float64)
        for index, (program, offset) in enumerate(zip(programs, offsets)):
            values[index] = program.combine(
                probabilities[offset : offset + len(program.jobs)]
            )
        return values

    def map_scalar(
        self, function: Callable[[Any], float], items: Iterable[Any]
    ) -> np.ndarray:
        """Scalar fallback: evaluate ``function`` per item into a float array.

        Used by the protocol families (tree / permutation-test based) whose
        acceptance computation does not reduce to chain programs.
        """
        return np.array([float(function(item)) for item in items], dtype=np.float64)


_default_engine: Optional[Engine] = None


def default_engine() -> Engine:
    """The process-wide engine (created on first use from ``REPRO_BACKEND``)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine(backend=os.environ.get(BACKEND_ENV_VAR))
    return _default_engine


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace the process-wide engine (``None`` resets to the environment default)."""
    global _default_engine
    _default_engine = engine
