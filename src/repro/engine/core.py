"""The :class:`Engine` facade protocols evaluate through.

An engine owns a :class:`~repro.engine.backends.SimulationBackend` and an
:class:`~repro.engine.cache.OperatorCache`.  Protocols hand it
:class:`~repro.engine.jobs.TreeProgram` objects — weighted sums of products
of :class:`~repro.engine.jobs.ChainJob` / :class:`~repro.engine.jobs.TreeJob`
instances — or plain scalar callables, for the protocol families whose
acceptance does not compile to programs.  The engine flattens every job of a
batch into one backend call per job type, so a batch of ``B`` protocol
invocations costs a handful of stacked contractions instead of ``B`` Python
loops.  Jobs carrying noise-channel annotations ride the same batches: the
backends route them onto their density-matrix paths transparently, so a
noise-strength sweep is just another program batch.

A process-wide default engine is available through :func:`default_engine`;
its backend is selected by the ``REPRO_BACKEND`` environment variable
(``"transfer-matrix"`` when unset), and the contraction dtype / device of
array-module backends by ``REPRO_DTYPE`` / ``REPRO_DEVICE`` (see
:mod:`repro.engine.array_ops`).  All three are re-checked on every
:func:`default_engine` call so pool workers pick up changes.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.engine.backends import SimulationBackend, get_backend
from repro.engine.cache import OperatorCache, OperatorPack
from repro.engine.jobs import ChainJob, Job, TreeJob, TreeProgram
from repro.utils.env import env_str

#: Environment variable selecting the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class Engine:
    """A simulation backend plus an operator cache, behind one facade."""

    def __init__(
        self,
        backend: Union[str, SimulationBackend, None] = None,
        cache: Optional[OperatorCache] = None,
    ):
        self._backend = get_backend(backend)
        self.cache = cache if cache is not None else OperatorCache()

    @property
    def backend(self) -> SimulationBackend:
        """The active simulation backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend."""
        return self._backend.name

    def with_backend(self, backend: Union[str, SimulationBackend]) -> "Engine":
        """A sibling engine on a different backend, sharing this engine's cache."""
        return Engine(backend=backend, cache=self.cache)

    # -- operator caching ----------------------------------------------------

    def cached_operator(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Memoize an operator under a hashable key (see :class:`OperatorCache`)."""
        return self.cache.get_or_build(key, builder)

    def export_operator_pack(self, source: str = "parent") -> OperatorPack:
        """Snapshot this engine's warm operators as a shippable pack.

        The pack seeds other engines' caches (typically fresh pool workers)
        so they stop independently re-warming the same hot operators; see
        :meth:`OperatorCache.export_pack`.
        """
        return self.cache.export_pack(source=source)

    def preload_operator_pack(self, pack: OperatorPack) -> int:
        """Seed this engine's cache from a pack (digest-verified); see
        :meth:`OperatorCache.preload`."""
        return self.cache.preload(pack)

    # -- evaluation ----------------------------------------------------------

    def chain_probabilities(self, jobs: Sequence[ChainJob]) -> np.ndarray:
        """Acceptance probabilities of a batch of chain jobs."""
        if not jobs:
            return np.zeros(0, dtype=np.float64)
        return self._backend.chain_probabilities(jobs)

    def tree_probabilities(self, jobs: Sequence[TreeJob]) -> np.ndarray:
        """Acceptance probabilities of a batch of tree jobs."""
        if not jobs:
            return np.zeros(0, dtype=np.float64)
        return self._backend.tree_probabilities(jobs)

    def job_probabilities(self, jobs: Sequence[Job]) -> np.ndarray:
        """Acceptance probabilities of a mixed batch of chain and tree jobs.

        Jobs are partitioned by type and handed to the backend in one call
        per type; the result keeps the input order.
        """
        if not jobs:
            return np.zeros(0, dtype=np.float64)
        chain_indices: List[int] = []
        tree_indices: List[int] = []
        for index, job in enumerate(jobs):
            (chain_indices if isinstance(job, ChainJob) else tree_indices).append(index)
        if not tree_indices:
            return self._backend.chain_probabilities(jobs)
        if not chain_indices:
            return self._backend.tree_probabilities(jobs)
        results = np.empty(len(jobs), dtype=np.float64)
        results[chain_indices] = self._backend.chain_probabilities(
            [jobs[i] for i in chain_indices]
        )
        results[tree_indices] = self._backend.tree_probabilities(
            [jobs[i] for i in tree_indices]
        )
        return results

    def evaluate_program(self, program: TreeProgram) -> float:
        """Value of a single program."""
        return program.combine(self.job_probabilities(program.jobs))

    def evaluate_programs(self, programs: Sequence[TreeProgram]) -> np.ndarray:
        """Values of many programs, with all their jobs in one backend batch."""
        if all(program.is_single_unit_job for program in programs):
            # Common fast path (e.g. equality chains/trees): one unit-weight
            # job per program, so the backend batch is already the answer.
            return self.job_probabilities([program.jobs[0] for program in programs])
        all_jobs: list = []
        offsets = []
        for program in programs:
            offsets.append(len(all_jobs))
            all_jobs.extend(program.jobs)
        probabilities = self.job_probabilities(all_jobs)
        values = np.empty(len(programs), dtype=np.float64)
        for index, (program, offset) in enumerate(zip(programs, offsets)):
            values[index] = program.combine(
                probabilities[offset : offset + len(program.jobs)]
            )
        return values

    def map_scalar(
        self, function: Callable[[Any], float], items: Iterable[Any]
    ) -> np.ndarray:
        """Scalar fallback: evaluate ``function`` per item into a float array.

        Used by the protocol families (ranking, classical baselines) and the
        oversized-fan-out instances whose acceptance computation does not
        compile to chain/tree programs.
        """
        return np.array([float(function(item)) for item in items], dtype=np.float64)


_default_engine: Optional[Engine] = None

#: Sentinel marking a default engine installed explicitly via
#: :func:`set_default_engine` (never re-resolved from the environment).
_EXPLICIT = object()

#: The ``(REPRO_BACKEND, REPRO_DTYPE, REPRO_DEVICE)`` triple the current
#: default engine was built from, or :data:`_EXPLICIT` when
#: :func:`set_default_engine` installed it.
_default_engine_env: Any = None


def _engine_env() -> tuple:
    return (
        env_str(BACKEND_ENV_VAR),
        env_str("REPRO_DTYPE"),
        env_str("REPRO_DEVICE"),
    )


def default_engine() -> Engine:
    """The process-wide engine, resolved from ``REPRO_BACKEND`` and friends.

    The ``REPRO_BACKEND`` / ``REPRO_DTYPE`` / ``REPRO_DEVICE`` variables are
    re-checked on every call: if any changed since the engine was built (pool
    workers commonly export them after the parent process already touched the
    engine), a fresh engine on the new configuration replaces the stale one.
    An engine installed through :func:`set_default_engine` is never displaced
    by the environment.
    """
    global _default_engine, _default_engine_env
    env = _engine_env()
    if _default_engine is None or (
        _default_engine_env is not _EXPLICIT and env != _default_engine_env
    ):
        _default_engine = Engine(backend=env[0])
        _default_engine_env = env
    return _default_engine


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace the process-wide engine (``None`` resets to the environment default)."""
    global _default_engine, _default_engine_env
    _default_engine = engine
    _default_engine_env = _EXPLICIT if engine is not None else None
