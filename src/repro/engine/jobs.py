"""Jobs and programs: the engine's intermediate representation.

The engine evaluates protocols through two job types and one program type:

:class:`ChainJob`
    One instance of the symmetrized SWAP-test chain shared by Algorithms 3, 6,
    7 and 10 of the paper: a fixed left state, ``m`` intermediate register
    pairs and a right-end accept operator.  Chains are kept as a dedicated
    flat-array job because they are by far the hottest shape; semantically a
    chain is the degenerate *path* tree (see :meth:`ChainJob.to_tree_job`).

:class:`TreeJob`
    One instance of a tree-structured verification: a rooted tree whose nodes
    carry registers (a fixed state, a symmetrized kept/sent pair, or a routed
    bundle), whose SWAP/permutation-test links follow the tree edges, and
    whose measuring leaves (or the measuring root of a path) carry accept
    operators.  This covers the Algorithm 5 equality protocol on general
    networks, the Algorithm 9 one-way-protocol trees of Theorem 32, and — as
    the degenerate path — every chain protocol.

:class:`TreeProgram`
    A weighted sum of products of jobs,

    ``P = sum_t  w_t * prod_{i in t} p(job_i)``,

    which is the shape every compiled protocol's acceptance probability
    takes.  Terms may mix chain and tree jobs; the engine flattens the jobs
    of many programs into one batch per job type so a backend evaluates all
    of them in a handful of stacked contractions.  :class:`ChainProgram` is a
    thin subclass retained for the chain families.

Tree-node vocabulary
--------------------

Every tree node has a *kind* (what registers it holds and how its local
randomness assigns them to ports) and a *test* (which accept factor it
contributes).  Acceptance of a job is the expectation, over the independent
per-node randomness, of the product of all test factors — which the backends
contract leaf-to-root instead of enumerating the joint pattern space.

Kinds:

``NODE_FIXED``
    At most one register and no randomness; the register (an input
    fingerprint, a chain's left state, the root message of a one-way tree) is
    presented unchanged on every port.  A fixed node with no register is a
    pure measuring leaf.
``NODE_SYM``
    Two registers *(kept-candidate, sent-candidate)*; with probability 1/2
    the node swaps them (the paper's symmetrization step).  Choice ``s``:
    slot ``s`` is kept for the node's own test, slot ``1 - s`` is forwarded
    to the parent.
``NODE_ROUTER``
    ``delta + 1`` registers for a node with ``delta`` children; the node
    draws a uniformly random assignment of registers to the ports
    *(child_1, ..., child_delta, keep)* — the Step-4 randomization of
    Algorithm 9.

Tests:

``TEST_NONE``
    No factor (input leaves, measuring leaves — their operator is consumed by
    the parent's ``TEST_FANOUT`` — and routers' non-terminal leaves).
``TEST_PERM``
    The permutation test of the node's kept register together with the
    register each child forwards *up* to it; for one child this is exactly
    the SWAP test, so chains are the arity-2 special case.
``TEST_MEASURE``
    The node applies its measurement operator to its single child's
    forwarded register — the right end of a chain written as a tree root.
``TEST_FANOUT``
    The node sends one register *down* to every child; an internal child
    SWAP-tests what it receives against its kept register, a measuring leaf
    child applies its measurement to what it receives (Algorithm 9).

Measurements (:class:`MeasurementSpec` / :class:`LeafMeasurement`):

``MEAS_DENSE``        ``<f| M |f>`` for an explicit operator (single factor).
``MEAS_DIAGONAL``     ``sum_i M_ii |f_i|^2`` for a diagonal operator.
``MEAS_PROJECTOR``    ``prod_f |<t_f|g_f>|^2`` — match every tensor factor.
``MEAS_SWAP``         ``1/2 + 1/2 prod_f |<t_f|g_f>|^2`` — a SWAP-test end.
``MEAS_MATCH_ANY``    ``1 - prod_f (1 - |<t_f|g_f>|^2)`` — at least one
                      factor matches (the erase-mask Hamming measurement).
``MEAS_THRESHOLD``    ``P[#matching factors >= threshold]`` under independent
                      per-factor checks (the sketch Hamming measurement).

Registers may be tensor products: a job carries one stacked state array per
tensor factor, and all overlaps factorize across the stacks — which is how
the many-factor Hamming messages ride the batched path without ever
materialising their product states.

Noise annotations
-----------------

Jobs may carry channel annotations (:class:`ChainNoise` for chains,
:class:`TreeNoise` for trees) mapping :class:`~repro.quantum.channels.
KrausChannel` instances onto the protocol's links (registers in transit),
nodes (proof delivery / input preparation) and tests (a classical readout
error flipping each accept flag).  Annotated jobs are evaluated on the
backends' density-matrix path: every register becomes the density matrix
obtained by pushing its pure state through the relevant channels, every
SWAP/permutation-test factor generalizes from squared overlaps to
Hilbert-Schmidt traces, and the same leaf-to-root / transfer contractions
run unchanged on vectorized densities.  Jobs without annotations (or with
structurally empty ones) stay on the pure-state fast path; the noisy flag is
part of :attr:`ChainJob.shape_key` and :attr:`TreeJob.signature`, so clean
and noisy jobs batch separately but noisy jobs with *different channel
strengths* still stack into one contraction — which is what makes
noise-strength sweeps fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import factorial
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import DimensionMismatchError, ProtocolError
from repro.quantum.channels import KrausChannel

#: Right-end kinds of a :class:`ChainJob`.  ``dense`` carries a full
#: ``(d, d)`` accept operator; ``projector`` carries a vector ``phi`` with
#: accept ``|<phi|f>|^2`` (the fingerprint measurement of the one-way EQ
#: protocol); ``swap`` carries a vector ``phi`` with accept
#: ``1/2 + |<phi|f>|^2 / 2`` (a right end that SWAP-tests against its own
#: fixed state, i.e. ``(I + |phi><phi|)/2``).
RIGHT_DENSE = "dense"
RIGHT_PROJECTOR = "projector"
RIGHT_SWAP = "swap"

_VECTOR_RIGHT_KINDS = (RIGHT_PROJECTOR, RIGHT_SWAP)

#: Tree-node kinds (see the module docstring).
NODE_FIXED = "fixed"
NODE_SYM = "sym"
NODE_ROUTER = "router"

#: Tree-node tests (see the module docstring).
TEST_NONE = "none"
TEST_PERM = "perm"
TEST_MEASURE = "measure"
TEST_FANOUT = "fanout"

#: Measurement kinds (see the module docstring).  The first three reuse the
#: chain right-end names so :meth:`ChainJob.to_tree_job` is a rename-free map.
MEAS_DENSE = RIGHT_DENSE
MEAS_PROJECTOR = RIGHT_PROJECTOR
MEAS_SWAP = RIGHT_SWAP
MEAS_DIAGONAL = "diagonal"
MEAS_MATCH_ANY = "match-any"
MEAS_THRESHOLD = "match-threshold"

_VECTOR_MEAS_KINDS = (MEAS_PROJECTOR, MEAS_SWAP, MEAS_MATCH_ANY, MEAS_THRESHOLD)

#: Largest permutation-test arity (kept register + children) a tree node may
#: compile to: the batched permanent enumerates ``arity!`` terms per test.
MAX_PERM_TEST_ARITY = 6

#: Largest register bundle of a router node: the leaf-to-root marginalisation
#: enumerates ``(delta + 1)!`` assignments per node (never across nodes).
MAX_ROUTER_REGISTERS = 6


def _validate_channel_tuple(
    channels: Sequence[Optional[KrausChannel]], count: int, dim: int, what: str
) -> Tuple[Optional[KrausChannel], ...]:
    channels = tuple(channels)
    if len(channels) != count:
        raise ProtocolError(f"expected {count} {what} channels, got {len(channels)}")
    for channel in channels:
        if channel is not None and channel.dim != dim:
            raise DimensionMismatchError(
                f"{what} channel {channel.name!r} acts on dimension {channel.dim}, "
                f"registers have dimension {dim}"
            )
    return channels


@dataclass(frozen=True, eq=False)
class ChainNoise:
    """Channel annotations of a :class:`ChainJob` (see the module docstring).

    Attributes
    ----------
    edge_channels:
        One optional channel per path edge, ``m + 1`` entries for a chain
        with ``m`` intermediate nodes (edge ``j`` joins node ``j`` to node
        ``j + 1``; node 0 is the left end).  Applied to every register sent
        across the edge.
    node_channels:
        One optional channel per intermediate node, applied to both proof
        registers delivered to it.
    left_channel:
        Preparation noise of the left end's own register.
    right_channel:
        Preparation noise of the right end's reference state — the target
        vector of a ``projector``/``swap`` right end (matching the tree
        family, where the root verifier's own register picks up its node
        channel).  Dense right ends carry no prepared state; annotating one
        raises at validation.
    readout_error:
        Probability that each local test's accept flag is misread (the
        classical binary symmetric channel on the outcome).
    """

    edge_channels: Tuple[Optional[KrausChannel], ...]
    node_channels: Tuple[Optional[KrausChannel], ...]
    left_channel: Optional[KrausChannel] = None
    right_channel: Optional[KrausChannel] = None
    readout_error: float = 0.0

    def __post_init__(self) -> None:
        error = float(self.readout_error)
        if not 0.0 <= error <= 1.0:
            raise ProtocolError(f"readout error must lie in [0, 1], got {error}")
        object.__setattr__(self, "readout_error", error)

    def validate(
        self, num_intermediate: int, dim: int, right_kind: Optional[str] = None
    ) -> None:
        """Check the annotation against a chain of ``m`` nodes and dimension ``d``."""
        _validate_channel_tuple(self.edge_channels, num_intermediate + 1, dim, "edge")
        _validate_channel_tuple(self.node_channels, num_intermediate, dim, "node")
        if self.left_channel is not None and self.left_channel.dim != dim:
            raise DimensionMismatchError(
                "left preparation channel has the wrong dimension"
            )
        if self.right_channel is not None:
            if self.right_channel.dim != dim:
                raise DimensionMismatchError(
                    "right preparation channel has the wrong dimension"
                )
            if right_kind == RIGHT_DENSE:
                raise ProtocolError(
                    "preparation noise on a dense right end is not supported: "
                    "dense accept operators carry no prepared reference state"
                )

    @property
    def is_trivial(self) -> bool:
        """True when no channel is assigned and the readout is perfect."""
        return (
            all(channel is None for channel in self.edge_channels)
            and all(channel is None for channel in self.node_channels)
            and self.left_channel is None
            and self.right_channel is None
            and self.readout_error == 0.0
        )

    @property
    def key(self) -> Tuple:
        """Value-level cache key: the per-position channel keys plus readout.

        Unlike a :class:`~repro.quantum.channels.NoiseModel` (whose key does
        not say how it lands on a particular network's labels), this captures
        exactly the channels the annotated job evaluates with — the right key
        for caching compiled programs.
        """
        def channel_key(channel: Optional[KrausChannel]) -> Optional[tuple]:
            return None if channel is None else channel.key

        return (
            tuple(channel_key(c) for c in self.edge_channels),
            tuple(channel_key(c) for c in self.node_channels),
            channel_key(self.left_channel),
            channel_key(self.right_channel),
            self.readout_error,
        )


@dataclass(frozen=True, eq=False)
class TreeNoise:
    """Channel annotations of a :class:`TreeJob` (up-forwarding family only).

    Attributes
    ----------
    up_channels:
        One optional channel per node, applied to the register the node
        forwards to its parent (the physical link toward the root); the
        root's entry is unused.
    node_channels:
        One optional channel per node, applied to every register the node
        holds (proof delivery for symmetrized nodes, input preparation for
        fixed leaves).
    readout_error:
        Probability that each local test's accept flag is misread.
    """

    up_channels: Tuple[Optional[KrausChannel], ...]
    node_channels: Tuple[Optional[KrausChannel], ...]
    readout_error: float = 0.0

    def __post_init__(self) -> None:
        error = float(self.readout_error)
        if not 0.0 <= error <= 1.0:
            raise ProtocolError(f"readout error must lie in [0, 1], got {error}")
        object.__setattr__(self, "readout_error", error)
        object.__setattr__(self, "up_channels", tuple(self.up_channels))
        object.__setattr__(self, "node_channels", tuple(self.node_channels))

    @property
    def is_trivial(self) -> bool:
        """True when no channel is assigned and the readout is perfect."""
        return (
            all(channel is None for channel in self.up_channels)
            and all(channel is None for channel in self.node_channels)
            and self.readout_error == 0.0
        )


@dataclass(frozen=True, eq=False)
class ChainJob:
    """One symmetrized SWAP-test chain instance.

    Compared by identity (``eq=False``): the fields are numpy arrays, for
    which the auto-generated dataclass ``__eq__``/``__hash__`` would raise.

    Attributes
    ----------
    left:
        The pure state of the left end, shape ``(d,)``.
    pairs:
        Proof register pairs of the intermediate nodes, shape ``(m, 2, d)``
        with slot 0 the kept-when-not-swapped register; ``m = 0`` encodes the
        degenerate chain where the left state reaches the right end directly.
    right_operator:
        The right end's accept element: a ``(d, d)`` matrix for the
        ``dense`` kind, or the defining vector ``phi`` of shape ``(d,)``
        for the rank-one-structured ``projector`` / ``swap`` kinds (which
        backends can fold into the same Gram contraction as the chain).
    right_kind:
        One of ``"dense"``, ``"projector"``, ``"swap"``.
    noise:
        Optional :class:`ChainNoise` channel annotation; when present (and
        not structurally empty) the job is evaluated on the density-matrix
        path.
    """

    left: np.ndarray
    pairs: np.ndarray
    right_operator: np.ndarray
    right_kind: str = RIGHT_DENSE
    noise: Optional[ChainNoise] = None

    @classmethod
    def from_states(
        cls,
        left: np.ndarray,
        node_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
        right_operator: np.ndarray,
        right_kind: str = RIGHT_DENSE,
        noise: Optional[ChainNoise] = None,
    ) -> "ChainJob":
        """Build a job from the per-node ``(a_j, b_j)`` state pairs."""
        left_vec = np.asarray(left, dtype=np.complex128).reshape(-1)
        dim = left_vec.size
        if node_pairs:
            pairs = np.empty((len(node_pairs), 2, dim), dtype=np.complex128)
            for index, (a, b) in enumerate(node_pairs):
                a_vec = np.asarray(a, dtype=np.complex128).reshape(-1)
                b_vec = np.asarray(b, dtype=np.complex128).reshape(-1)
                if a_vec.size != dim or b_vec.size != dim:
                    raise DimensionMismatchError(
                        "all chain registers must share one dimension"
                    )
                pairs[index, 0] = a_vec
                pairs[index, 1] = b_vec
        else:
            pairs = np.zeros((0, 2, dim), dtype=np.complex128)
        return cls.from_arrays(left_vec, pairs, right_operator, right_kind, noise=noise)

    @classmethod
    def from_arrays(
        cls,
        left: np.ndarray,
        pairs: np.ndarray,
        right_operator: np.ndarray,
        right_kind: str = RIGHT_DENSE,
        noise: Optional[ChainNoise] = None,
    ) -> "ChainJob":
        """Fast constructor for callers that already hold stacked arrays.

        ``pairs`` must have shape ``(m, 2, d)`` (a read-only broadcast view is
        fine: backends stack jobs into fresh arrays before contracting).
        """
        left = np.asarray(left, dtype=np.complex128)
        pairs = np.asarray(pairs, dtype=np.complex128)
        right_operator = np.asarray(right_operator, dtype=np.complex128)
        if pairs.shape[1:] != (2, left.size):
            raise DimensionMismatchError("all chain registers must share one dimension")
        if right_kind == RIGHT_DENSE:
            expected = (left.size, left.size)
        elif right_kind in _VECTOR_RIGHT_KINDS:
            expected = (left.size,)
        else:
            raise DimensionMismatchError(f"unknown right-end kind {right_kind!r}")
        if right_operator.shape != expected:
            raise DimensionMismatchError("right accept operator has the wrong dimension")
        if noise is not None:
            noise.validate(int(pairs.shape[0]), int(left.size), right_kind)
        return cls(
            left=left,
            pairs=pairs,
            right_operator=right_operator,
            right_kind=right_kind,
            noise=noise,
        )

    def dense_right_operator(self) -> np.ndarray:
        """The right end as an explicit ``(d, d)`` matrix (any kind)."""
        if self.right_kind == RIGHT_DENSE:
            return self.right_operator
        phi = self.right_operator
        projector = np.outer(phi, phi.conj())
        if self.right_kind == RIGHT_PROJECTOR:
            return projector
        return (np.eye(phi.size, dtype=np.complex128) + projector) / 2.0

    @property
    def num_intermediate(self) -> int:
        """Number of intermediate nodes ``m``."""
        return int(self.pairs.shape[0])

    @property
    def dim(self) -> int:
        """Register dimension ``d``."""
        return int(self.left.size)

    @property
    def is_noisy(self) -> bool:
        """True when the job carries a non-empty channel annotation."""
        return self.noise is not None and not self.noise.is_trivial

    @property
    def shape_key(self) -> Tuple[int, int, str, bool]:
        """Grouping key ``(m, d, right_kind, noisy)`` for stacked batch evaluation.

        Noisy jobs group apart from clean ones (they contract vectorized
        densities instead of state vectors), but jobs whose channels differ
        only in strength share a group — a noise sweep is one stack.
        """
        key = self.__dict__.get("_shape_key")
        if key is None:
            key = (self.num_intermediate, self.dim, self.right_kind, self.is_noisy)
            object.__setattr__(self, "_shape_key", key)
        return key

    def to_tree_job(self) -> "TreeJob":
        """This chain as the degenerate path tree.

        The tree is rooted at the right end (a fixed node that measures its
        single child's forwarded register); the intermediate nodes become
        symmetrized nodes whose arity-2 permutation test *is* the SWAP test,
        and the left end becomes a fixed leaf.  A :class:`ChainNoise`
        annotation maps onto the equivalent :class:`TreeNoise` (edge ``j``
        becomes the up-link of the node forwarding across it).  Both
        representations evaluate to the same probability — exercised by the
        engine parity tests.
        """
        builder = TreeJobBuilder()
        measurement = MeasurementSpec(
            kind=self.right_kind,
            operator=self.right_operator if self.right_kind == RIGHT_DENSE else None,
            targets=None if self.right_kind == RIGHT_DENSE else (self.right_operator,),
        )
        parent = builder.add_node(
            -1, NODE_FIXED, test=TEST_MEASURE, measurement=measurement
        )
        for index in range(self.num_intermediate - 1, -1, -1):
            parent = builder.add_node(
                parent,
                NODE_SYM,
                registers=((self.pairs[index, 0],), (self.pairs[index, 1],)),
                test=TEST_PERM,
            )
        builder.add_node(parent, NODE_FIXED, registers=((self.left,),))
        return builder.build(noise=self._tree_noise())

    def _tree_noise(self) -> Optional["TreeNoise"]:
        """The chain's noise annotation in tree-node order (or ``None``)."""
        if self.noise is None:
            return None
        m = self.num_intermediate
        # Tree node order: root (right end), intermediates m-1 .. 0, left leaf.
        # The root's node channel is the right end's preparation noise: the
        # evaluators apply a measuring node's node channel to its target row.
        up_channels: List[Optional[KrausChannel]] = [None]
        node_channels: List[Optional[KrausChannel]] = [self.noise.right_channel]
        for index in range(m - 1, -1, -1):
            up_channels.append(self.noise.edge_channels[index + 1])
            node_channels.append(self.noise.node_channels[index])
        up_channels.append(self.noise.edge_channels[0])
        node_channels.append(self.noise.left_channel)
        return TreeNoise(
            up_channels=tuple(up_channels),
            node_channels=tuple(node_channels),
            readout_error=self.noise.readout_error,
        )


@dataclass(frozen=True, eq=False)
class MeasurementSpec:
    """A measurement accept element, in compiler-facing form.

    ``targets`` holds one target vector per tensor factor for the
    vector-structured kinds; ``operator`` holds the explicit accept operator
    (a matrix for ``dense``, its diagonal for ``diagonal``) on single-factor
    registers.  Protocol layers hand specs to :class:`TreeJobBuilder`, which
    stacks the target vectors into the job's state stacks and records the
    row-indexed :class:`LeafMeasurement` the backends consume.
    """

    kind: str
    targets: Optional[Tuple[np.ndarray, ...]] = None
    operator: Optional[np.ndarray] = None
    threshold: int = 0


@dataclass(frozen=True, eq=False)
class LeafMeasurement:
    """A measurement bound to a :class:`TreeJob`: targets live in the stacks.

    ``target_row`` indexes the row of the job's per-factor state stacks that
    holds the target vectors (vector kinds); ``operator`` is the explicit
    accept element for the ``dense`` / ``diagonal`` kinds.
    """

    kind: str
    target_row: Optional[int] = None
    operator: Optional[np.ndarray] = None
    threshold: int = 0


@dataclass(frozen=True, eq=False)
class TreeJob:
    """One tree-structured verification instance (see the module docstring).

    Compared by identity (``eq=False``), like :class:`ChainJob`.

    Attributes
    ----------
    parents:
        Parent index per node, in topological order: ``parents[0] == -1``
        (the root) and ``parents[i] < i`` for every other node.
    kinds:
        Per-node kind: ``NODE_FIXED`` / ``NODE_SYM`` / ``NODE_ROUTER``.
    tests:
        Per-node test: ``TEST_NONE`` / ``TEST_PERM`` / ``TEST_MEASURE`` /
        ``TEST_FANOUT``.
    slots:
        Per-node register rows into the factor stacks.
    factors:
        One stacked state array per tensor factor, each of shape
        ``(num_rows, d_f)``; row ``r`` across all stacks is register ``r``.
    measurements:
        Per-node optional :class:`LeafMeasurement`.
    noise:
        Optional :class:`TreeNoise` channel annotation; when present (and
        not structurally empty) the job is evaluated on the density-matrix
        path.
    """

    parents: Tuple[int, ...]
    kinds: Tuple[str, ...]
    tests: Tuple[str, ...]
    slots: Tuple[Tuple[int, ...], ...]
    factors: Tuple[np.ndarray, ...]
    measurements: Tuple[Optional[LeafMeasurement], ...]
    noise: Optional[TreeNoise] = None

    def __post_init__(self) -> None:
        self._validate()

    @property
    def is_noisy(self) -> bool:
        """True when the job carries a non-empty channel annotation."""
        return self.noise is not None and not self.noise.is_trivial

    @property
    def num_nodes(self) -> int:
        """Number of tree nodes."""
        return len(self.parents)

    @property
    def num_factors(self) -> int:
        """Number of tensor factors of every register."""
        return len(self.factors)

    @property
    def children(self) -> Tuple[Tuple[int, ...], ...]:
        """Child indices per node (derived from ``parents``, cached)."""
        cached = self.__dict__.get("_children")
        if cached is None:
            lists: List[List[int]] = [[] for _ in self.parents]
            for node, parent in enumerate(self.parents):
                if parent >= 0:
                    lists[parent].append(node)
            cached = tuple(tuple(item) for item in lists)
            object.__setattr__(self, "_children", cached)
        return cached

    @property
    def signature(self) -> Tuple:
        """Structure key: jobs with equal signatures batch into one stack."""
        cached = self.__dict__.get("_signature")
        if cached is None:
            measurement_key = tuple(
                None
                if m is None
                else (m.kind, m.target_row, m.threshold, m.operator is not None)
                for m in self.measurements
            )
            cached = (
                self.parents,
                self.kinds,
                self.tests,
                self.slots,
                tuple(stack.shape for stack in self.factors),
                measurement_key,
                self.is_noisy,
            )
            object.__setattr__(self, "_signature", cached)
        return cached

    def _validate(self) -> None:
        n = self.num_nodes
        if n == 0:
            raise ProtocolError("a tree job needs at least one node")
        if not (len(self.kinds) == len(self.tests) == len(self.slots) == len(self.measurements) == n):
            raise ProtocolError("tree job per-node fields disagree on the node count")
        if self.parents[0] != -1:
            raise ProtocolError("tree job node 0 must be the root (parent -1)")
        for node in range(1, n):
            if not 0 <= self.parents[node] < node:
                raise ProtocolError(
                    "tree job nodes must be topologically ordered (parent before child)"
                )
        if not self.factors:
            raise ProtocolError("a tree job needs at least one factor stack")
        num_rows = self.factors[0].shape[0]
        for stack in self.factors:
            if stack.ndim != 2 or stack.shape[0] != num_rows:
                raise DimensionMismatchError(
                    "all factor stacks must share one register count"
                )
        children = self.children
        down = any(test == TEST_FANOUT for test in self.tests)
        for node in range(n):
            kind, test = self.kinds[node], self.tests[node]
            node_slots = self.slots[node]
            degree = len(children[node])
            for row in node_slots:
                if not 0 <= row < num_rows:
                    raise ProtocolError(f"node {node} references state row {row} out of range")
            if kind == NODE_FIXED:
                if len(node_slots) > 1:
                    raise ProtocolError("a fixed node holds at most one register")
            elif kind == NODE_SYM:
                if len(node_slots) != 2:
                    raise ProtocolError("a symmetrized node holds exactly two registers")
            elif kind == NODE_ROUTER:
                if test != TEST_FANOUT:
                    # The evaluators implement router randomization only for
                    # the fan-out family; accepting a router elsewhere would
                    # silently degrade it to a fixed slot-0 forwarder.
                    raise ProtocolError("router nodes require the fan-out test")
                if len(node_slots) != degree + 1:
                    raise ProtocolError(
                        "a router node holds one register per child plus the kept one"
                    )
                if len(node_slots) > MAX_ROUTER_REGISTERS:
                    raise ProtocolError(
                        f"router bundle of {len(node_slots)} registers exceeds the "
                        f"{MAX_ROUTER_REGISTERS}-register assignment-enumeration limit"
                    )
            else:
                raise ProtocolError(f"unknown tree node kind {kind!r}")
            if test == TEST_PERM:
                if degree == 0:
                    raise ProtocolError("a permutation-test node needs at least one child")
                if kind == NODE_ROUTER or down:
                    raise ProtocolError("permutation tests belong to the up-forwarding family")
                if not node_slots:
                    raise ProtocolError("a permutation-test node needs a kept register")
                arity = degree + 1
                if arity > MAX_PERM_TEST_ARITY:
                    raise ProtocolError(
                        f"permutation test of arity {arity} exceeds the "
                        f"{MAX_PERM_TEST_ARITY}-register permanent limit"
                    )
                if arity > 2 and self.num_factors != 1:
                    raise ProtocolError(
                        "permutation tests of arity > 2 require single-factor registers"
                    )
            elif test == TEST_MEASURE:
                if degree != 1:
                    raise ProtocolError("a measuring root must have exactly one child")
                if self.measurements[node] is None:
                    raise ProtocolError("a measuring node needs a measurement")
                if down:
                    raise ProtocolError("TEST_MEASURE belongs to the up-forwarding family")
            elif test == TEST_FANOUT:
                if degree == 0:
                    raise ProtocolError("a fan-out node needs at least one child")
                if kind == NODE_SYM:
                    raise ProtocolError("fan-out nodes are fixed roots or routers")
                if kind == NODE_FIXED and len(node_slots) != 1:
                    raise ProtocolError("a fixed fan-out root needs its message register")
            elif test != TEST_NONE:
                raise ProtocolError(f"unknown tree node test {test!r}")
            measurement = self.measurements[node]
            if measurement is not None:
                self._validate_measurement(node, measurement, num_rows)
        if down:
            for node in range(n):
                if children[node] and self.tests[node] != TEST_FANOUT:
                    raise ProtocolError(
                        "in a fan-out (down-forwarding) job every internal node fans out"
                    )
        if self.noise is not None and not self.noise.is_trivial:
            if down:
                raise ProtocolError(
                    "noise annotations support the up-forwarding tree family only"
                )
            if self.num_factors != 1:
                raise ProtocolError(
                    "noise annotations require single-factor registers"
                )
            dim = int(self.factors[0].shape[1])
            _validate_channel_tuple(self.noise.up_channels, n, dim, "up-link")
            _validate_channel_tuple(self.noise.node_channels, n, dim, "node")
            for node in range(n):
                measurement = self.measurements[node]
                if (
                    measurement is not None
                    and measurement.kind in (MEAS_DENSE, MEAS_DIAGONAL)
                    and self.noise.node_channels[node] is not None
                ):
                    raise ProtocolError(
                        "preparation noise on a dense/diagonal measuring node "
                        "is not supported: its accept operator carries no "
                        "prepared reference state"
                    )

    def _validate_measurement(
        self, node: int, measurement: LeafMeasurement, num_rows: int
    ) -> None:
        if measurement.kind in (MEAS_DENSE, MEAS_DIAGONAL):
            if measurement.operator is None:
                raise ProtocolError(f"{measurement.kind} measurement needs an operator")
            if self.num_factors != 1:
                raise ProtocolError(
                    f"{measurement.kind} measurements require single-factor registers"
                )
            dim = self.factors[0].shape[1]
            expected = (dim, dim) if measurement.kind == MEAS_DENSE else (dim,)
            if measurement.operator.shape != expected:
                raise DimensionMismatchError(
                    f"node {node} measurement operator has the wrong dimension"
                )
        elif measurement.kind in _VECTOR_MEAS_KINDS:
            if measurement.target_row is None or not 0 <= measurement.target_row < num_rows:
                raise ProtocolError(
                    f"node {node} measurement needs an in-range target row"
                )
        else:
            raise ProtocolError(f"unknown measurement kind {measurement.kind!r}")


class TreeJobBuilder:
    """Incremental construction of a :class:`TreeJob`.

    Usage: ``add_node`` in topological order (root first, each parent before
    its children), then ``build``.  A *register* is a sequence of per-factor
    vectors; for single-factor jobs a bare 1-D array is accepted.
    """

    def __init__(self, num_factors: int = 1):
        if num_factors <= 0:
            raise ProtocolError("a tree job needs at least one tensor factor")
        self.num_factors = int(num_factors)
        self._parents: List[int] = []
        self._kinds: List[str] = []
        self._tests: List[str] = []
        self._slots: List[Tuple[int, ...]] = []
        self._measurements: List[Optional[LeafMeasurement]] = []
        self._rows: List[Tuple[np.ndarray, ...]] = []
        self._up_channels: List[Optional[KrausChannel]] = []
        self._node_channels: List[Optional[KrausChannel]] = []

    def _add_row(self, register: Union[np.ndarray, Sequence[np.ndarray]]) -> int:
        if isinstance(register, np.ndarray) and register.ndim == 1:
            register = (register,)
        vectors = tuple(
            np.asarray(vector, dtype=np.complex128).reshape(-1) for vector in register
        )
        if len(vectors) != self.num_factors:
            raise DimensionMismatchError(
                f"register has {len(vectors)} factors, the job has {self.num_factors}"
            )
        if self._rows:
            for vector, reference in zip(vectors, self._rows[0]):
                if vector.size != reference.size:
                    raise DimensionMismatchError(
                        "all registers must share per-factor dimensions"
                    )
        self._rows.append(vectors)
        return len(self._rows) - 1

    def add_node(
        self,
        parent: int,
        kind: str,
        registers: Sequence[Union[np.ndarray, Sequence[np.ndarray]]] = (),
        test: str = TEST_NONE,
        measurement: Optional[MeasurementSpec] = None,
        up_channel: Optional[KrausChannel] = None,
        node_channel: Optional[KrausChannel] = None,
    ) -> int:
        """Append a node; returns its index (use as ``parent`` for children).

        ``up_channel`` is the noise of the link toward the parent (applied
        to the register this node forwards up); ``node_channel`` the noise
        of the node's own registers.  Any non-``None`` channel (or a
        non-zero ``readout_error`` passed to :meth:`build`) makes the built
        job a noisy one.
        """
        if parent >= len(self._parents):
            raise ProtocolError("tree nodes must be added parent-first (topological order)")
        bound = None
        if measurement is not None:
            target_row = None
            if measurement.targets is not None:
                target_row = self._add_row(tuple(measurement.targets))
            bound = LeafMeasurement(
                kind=measurement.kind,
                target_row=target_row,
                operator=(
                    None
                    if measurement.operator is None
                    else np.asarray(measurement.operator, dtype=np.complex128)
                ),
                threshold=int(measurement.threshold),
            )
        self._parents.append(int(parent))
        self._kinds.append(kind)
        self._tests.append(test)
        self._slots.append(tuple(self._add_row(register) for register in registers))
        self._measurements.append(bound)
        self._up_channels.append(up_channel)
        self._node_channels.append(node_channel)
        return len(self._parents) - 1

    def build(
        self, noise: Optional[TreeNoise] = None, readout_error: float = 0.0
    ) -> TreeJob:
        """Freeze the accumulated nodes into a validated :class:`TreeJob`.

        An explicit ``noise`` annotation overrides the per-node channels
        collected by :meth:`add_node`; otherwise those channels (plus
        ``readout_error``) are assembled into one, or omitted entirely when
        all are empty.
        """
        if not self._rows:
            raise ProtocolError("a tree job needs at least one register or target state")
        factors = tuple(
            np.stack([row[factor] for row in self._rows])
            for factor in range(self.num_factors)
        )
        if noise is None:
            assembled = TreeNoise(
                up_channels=tuple(self._up_channels),
                node_channels=tuple(self._node_channels),
                readout_error=readout_error,
            )
            noise = None if assembled.is_trivial else assembled
        return TreeJob(
            parents=tuple(self._parents),
            kinds=tuple(self._kinds),
            tests=tuple(self._tests),
            slots=tuple(self._slots),
            factors=factors,
            measurements=tuple(self._measurements),
            noise=noise,
        )


#: Any job the engine can evaluate.
Job = Union[ChainJob, TreeJob]


@dataclass(frozen=True, eq=False)
class TreeProgram:
    """A weighted sum of products of jobs (chain and/or tree).

    Compared by identity (``eq=False``), like the job classes.

    ``terms`` holds ``(weight, job_indices)`` pairs; the program's value on
    job probabilities ``p`` is ``sum_t weight_t * prod_{i in t} p[i]``,
    clipped to ``[0, 1]``.  A program with no terms evaluates to 0 (used for
    instances that are rejected outright, e.g. a zero-support index
    distribution).
    """

    jobs: Tuple[Job, ...] = field(default_factory=tuple)
    terms: Tuple[Tuple[float, Tuple[int, ...]], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(
            self,
            "terms",
            tuple((float(w), tuple(int(i) for i in idx)) for w, idx in self.terms),
        )
        for _, indices in self.terms:
            for index in indices:
                if index < 0 or index >= len(self.jobs):
                    raise DimensionMismatchError(
                        f"term references job {index} outside the program's {len(self.jobs)} jobs"
                    )

    @classmethod
    def single(cls, job: Job, weight: float = 1.0) -> "TreeProgram":
        """A program with one unit-weight job (the plain chain/tree protocols)."""
        return cls(jobs=(job,), terms=((weight, (0,)),))

    @property
    def is_single_unit_job(self) -> bool:
        """True for the one-unit-weight-job shape (enables a batch fast path)."""
        return (
            len(self.jobs) == 1
            and len(self.terms) == 1
            and self.terms[0] == (1.0, (0,))
        )

    @classmethod
    def rejecting(cls) -> "TreeProgram":
        """A program that always evaluates to zero."""
        return cls(jobs=(), terms=())

    def combine(self, job_probabilities: np.ndarray) -> float:
        """Evaluate the weighted sum of products on the given job probabilities."""
        total = 0.0
        for weight, indices in self.terms:
            value = weight
            for index in indices:
                value *= float(job_probabilities[index])
                if value == 0.0:
                    break
            total += value
        return float(min(max(total, 0.0), 1.0))


class ChainProgram(TreeProgram):
    """Thin subclass of :class:`TreeProgram` kept for the chain families.

    A chain is the degenerate path tree, so the program layer needs nothing
    chain-specific; the subclass exists so chain-compiling protocols keep a
    descriptive type and old imports keep working.
    """


def group_jobs_by_shape(
    jobs: Sequence[ChainJob],
) -> Dict[Tuple[int, int, str, bool], List[int]]:
    """Indices of ``jobs`` grouped by ``(m, dim, right_kind, noisy)`` for stacking."""
    groups: Dict[Tuple[int, int, str, bool], List[int]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(job.shape_key, []).append(index)
    return groups


def group_tree_jobs_by_signature(
    jobs: Sequence[TreeJob],
) -> Dict[Tuple, List[int]]:
    """Indices of ``jobs`` grouped by structure signature for stacking."""
    groups: Dict[Tuple, List[int]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(job.signature, []).append(index)
    return groups


def router_assignments(num_registers: int) -> List[Tuple[int, ...]]:
    """All register-to-port assignments of a router bundle (guarded size)."""
    from itertools import permutations as iter_permutations

    if num_registers > MAX_ROUTER_REGISTERS:
        raise ProtocolError(
            f"router bundle of {num_registers} registers exceeds the "
            f"{MAX_ROUTER_REGISTERS}-register assignment-enumeration limit"
        )
    return list(iter_permutations(range(num_registers)))


def assignment_count(num_registers: int) -> int:
    """Number of uniform assignments of a router bundle: ``num_registers!``."""
    return factorial(num_registers)
