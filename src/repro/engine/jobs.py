"""Chain jobs and chain programs: the engine's intermediate representation.

A :class:`ChainJob` is one instance of the symmetrized SWAP-test chain shared
by Algorithms 3, 6, 7 and 10 of the paper: a fixed left state, ``m``
intermediate register pairs and a right-end accept operator.  A
:class:`ChainProgram` expresses an acceptance probability as a weighted sum of
products of chain jobs,

``P = sum_t  w_t * prod_{i in t} p(job_i)``,

which covers every chain-reducible protocol in the library:

* equality on a path — one term, one job;
* greater-than — one term per surviving index value, weighted by the joint
  index-measurement probability;
* relay equality — one term per relay measurement outcome whose job tuple
  multiplies all segment/copy chains;
* the QMA one-way conversion — one term scaled by Alice's success probability.

Programs from many protocol invocations can be flattened into a single batch
so a backend evaluates all jobs in one stacked contraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError


#: Right-end kinds.  ``dense`` carries a full ``(d, d)`` accept operator;
#: ``projector`` carries a vector ``phi`` with accept ``|<phi|f>|^2`` (the
#: fingerprint measurement of the one-way EQ protocol); ``swap`` carries a
#: vector ``phi`` with accept ``1/2 + |<phi|f>|^2 / 2`` (a right end that
#: SWAP-tests against its own fixed state, i.e. ``(I + |phi><phi|)/2``).
RIGHT_DENSE = "dense"
RIGHT_PROJECTOR = "projector"
RIGHT_SWAP = "swap"

_VECTOR_RIGHT_KINDS = (RIGHT_PROJECTOR, RIGHT_SWAP)


@dataclass(frozen=True, eq=False)
class ChainJob:
    """One symmetrized SWAP-test chain instance.

    Compared by identity (``eq=False``): the fields are numpy arrays, for
    which the auto-generated dataclass ``__eq__``/``__hash__`` would raise.

    Attributes
    ----------
    left:
        The pure state of the left end, shape ``(d,)``.
    pairs:
        Proof register pairs of the intermediate nodes, shape ``(m, 2, d)``
        with slot 0 the kept-when-not-swapped register; ``m = 0`` encodes the
        degenerate chain where the left state reaches the right end directly.
    right_operator:
        The right end's accept element: a ``(d, d)`` matrix for the
        ``dense`` kind, or the defining vector ``phi`` of shape ``(d,)``
        for the rank-one-structured ``projector`` / ``swap`` kinds (which
        backends can fold into the same Gram contraction as the chain).
    right_kind:
        One of ``"dense"``, ``"projector"``, ``"swap"``.
    """

    left: np.ndarray
    pairs: np.ndarray
    right_operator: np.ndarray
    right_kind: str = RIGHT_DENSE

    @classmethod
    def from_states(
        cls,
        left: np.ndarray,
        node_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
        right_operator: np.ndarray,
        right_kind: str = RIGHT_DENSE,
    ) -> "ChainJob":
        """Build a job from the per-node ``(a_j, b_j)`` state pairs."""
        left_vec = np.asarray(left, dtype=np.complex128).reshape(-1)
        dim = left_vec.size
        if node_pairs:
            pairs = np.empty((len(node_pairs), 2, dim), dtype=np.complex128)
            for index, (a, b) in enumerate(node_pairs):
                a_vec = np.asarray(a, dtype=np.complex128).reshape(-1)
                b_vec = np.asarray(b, dtype=np.complex128).reshape(-1)
                if a_vec.size != dim or b_vec.size != dim:
                    raise DimensionMismatchError(
                        "all chain registers must share one dimension"
                    )
                pairs[index, 0] = a_vec
                pairs[index, 1] = b_vec
        else:
            pairs = np.zeros((0, 2, dim), dtype=np.complex128)
        return cls.from_arrays(left_vec, pairs, right_operator, right_kind)

    @classmethod
    def from_arrays(
        cls,
        left: np.ndarray,
        pairs: np.ndarray,
        right_operator: np.ndarray,
        right_kind: str = RIGHT_DENSE,
    ) -> "ChainJob":
        """Fast constructor for callers that already hold stacked arrays.

        ``pairs`` must have shape ``(m, 2, d)`` (a read-only broadcast view is
        fine: backends stack jobs into fresh arrays before contracting).
        """
        left = np.asarray(left, dtype=np.complex128)
        pairs = np.asarray(pairs, dtype=np.complex128)
        right_operator = np.asarray(right_operator, dtype=np.complex128)
        if pairs.shape[1:] != (2, left.size):
            raise DimensionMismatchError("all chain registers must share one dimension")
        if right_kind == RIGHT_DENSE:
            expected = (left.size, left.size)
        elif right_kind in _VECTOR_RIGHT_KINDS:
            expected = (left.size,)
        else:
            raise DimensionMismatchError(f"unknown right-end kind {right_kind!r}")
        if right_operator.shape != expected:
            raise DimensionMismatchError("right accept operator has the wrong dimension")
        return cls(
            left=left, pairs=pairs, right_operator=right_operator, right_kind=right_kind
        )

    def dense_right_operator(self) -> np.ndarray:
        """The right end as an explicit ``(d, d)`` matrix (any kind)."""
        if self.right_kind == RIGHT_DENSE:
            return self.right_operator
        phi = self.right_operator
        projector = np.outer(phi, phi.conj())
        if self.right_kind == RIGHT_PROJECTOR:
            return projector
        return (np.eye(phi.size, dtype=np.complex128) + projector) / 2.0

    @property
    def num_intermediate(self) -> int:
        """Number of intermediate nodes ``m``."""
        return int(self.pairs.shape[0])

    @property
    def dim(self) -> int:
        """Register dimension ``d``."""
        return int(self.left.size)

    @property
    def shape_key(self) -> Tuple[int, int, str]:
        """Grouping key ``(m, d, right_kind)`` for stacked batch evaluation."""
        key = self.__dict__.get("_shape_key")
        if key is None:
            key = (self.num_intermediate, self.dim, self.right_kind)
            object.__setattr__(self, "_shape_key", key)
        return key


@dataclass(frozen=True, eq=False)
class ChainProgram:
    """A weighted sum of products of chain jobs.

    Compared by identity (``eq=False``), like :class:`ChainJob`.

    ``terms`` holds ``(weight, job_indices)`` pairs; the program's value on
    job probabilities ``p`` is ``sum_t weight_t * prod_{i in t} p[i]``,
    clipped to ``[0, 1]``.  A program with no terms evaluates to 0 (used for
    instances that are rejected outright, e.g. a zero-support index
    distribution).
    """

    jobs: Tuple[ChainJob, ...] = field(default_factory=tuple)
    terms: Tuple[Tuple[float, Tuple[int, ...]], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(
            self,
            "terms",
            tuple((float(w), tuple(int(i) for i in idx)) for w, idx in self.terms),
        )
        for _, indices in self.terms:
            for index in indices:
                if index < 0 or index >= len(self.jobs):
                    raise DimensionMismatchError(
                        f"term references job {index} outside the program's {len(self.jobs)} jobs"
                    )

    @classmethod
    def single(cls, job: ChainJob, weight: float = 1.0) -> "ChainProgram":
        """A program with one unit-weight job (the plain chain protocols)."""
        return cls(jobs=(job,), terms=((weight, (0,)),))

    @property
    def is_single_unit_job(self) -> bool:
        """True for the one-unit-weight-job shape (enables a batch fast path)."""
        return (
            len(self.jobs) == 1
            and len(self.terms) == 1
            and self.terms[0] == (1.0, (0,))
        )

    @classmethod
    def rejecting(cls) -> "ChainProgram":
        """A program that always evaluates to zero."""
        return cls(jobs=(), terms=())

    def combine(self, job_probabilities: np.ndarray) -> float:
        """Evaluate the weighted sum of products on the given job probabilities."""
        total = 0.0
        for weight, indices in self.terms:
            value = weight
            for index in indices:
                value *= float(job_probabilities[index])
                if value == 0.0:
                    break
            total += value
        return float(min(max(total, 0.0), 1.0))


def group_jobs_by_shape(
    jobs: Sequence[ChainJob],
) -> Dict[Tuple[int, int, str], List[int]]:
    """Indices of ``jobs`` grouped by ``(m, dim, right_kind)`` for stacking."""
    groups: Dict[Tuple[int, int, str], List[int]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(job.shape_key, []).append(index)
    return groups
