"""Bounded operator cache shared by the simulation engine.

Protocols repeatedly rebuild identical operators: the SWAP projector of a
fixed register dimension, the right-end accept operator of a fingerprint
string, the exact chain acceptance operator of a soundness sweep.  The
:class:`OperatorCache` memoizes them under hashable keys (by convention a
tuple starting with a kind tag and including the owning scheme/protocol
object, which keeps the key unambiguous across instances).

Cached arrays are frozen copies (``writeable = False``) so that a cache hit
can be returned without a defensive copy and the caller's own array stays
both mutable and decoupled from the cache; callers that need a mutable
array from a hit must copy explicitly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

import numpy as np


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of an :class:`OperatorCache`."""

    hits: int
    misses: int
    entries: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form for benchmark metadata / JSON exports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class OperatorCache:
    """A bounded LRU cache for numpy operators and other immutable values."""

    def __init__(self, max_entries: int = 512):
        if max_entries <= 0:
            raise ValueError("cache must allow at least one entry")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @staticmethod
    def _freeze(value: Any) -> Any:
        # Freeze a *copy*, never the caller's array: flipping ``writeable``
        # on the argument itself would silently freeze an array the caller
        # still owns, and a frozen view would share the buffer — letting the
        # caller mutate the cached entry through its own reference after
        # insertion.  The copy costs one allocation per miss; the hit path
        # stays copy-free.
        if isinstance(value, np.ndarray):
            frozen = value.copy()
            frozen.setflags(write=False)
            return frozen
        return value

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None``; updates the hit/miss counters."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            return self._entries[key]
        self._misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert (or refresh) a value, evicting the least recently used entry.

        Returns the stored (frozen) value, so a miss hands out the same
        read-only object every later hit will.
        """
        frozen = self._freeze(value)
        self._entries[key] = frozen
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
        return frozen

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building and inserting it on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            return self._entries[key]
        self._misses += 1
        return self.put(key, builder())

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def stats(self) -> CacheStats:
        """A snapshot of the cache counters (surfaced in benchmark metadata)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._entries),
            evictions=self._evictions,
        )
