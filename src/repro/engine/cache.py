"""Bounded operator cache shared by the simulation engine.

Protocols repeatedly rebuild identical operators: the SWAP projector of a
fixed register dimension, the right-end accept operator of a fingerprint
string, the exact chain acceptance operator of a soundness sweep.  The
:class:`OperatorCache` memoizes them under hashable keys (by convention a
tuple starting with a kind tag and including the owning scheme/protocol
object, which keeps the key unambiguous across instances).

Cached arrays are frozen copies (``writeable = False``) so that a cache hit
can be returned without a defensive copy and the caller's own array stays
both mutable and decoupled from the cache; callers that need a mutable
array from a hit must copy explicitly.

For warm-start execution the cache round-trips through an
:class:`OperatorPack`: :meth:`OperatorCache.export_pack` snapshots the
frozen array entries under a content digest, and
:meth:`OperatorCache.preload` seeds another cache (typically a fresh pool
worker's) from the pack without charging misses — preloaded entries and the
hits they later serve are counted separately (``preloaded``/``pack_hits``),
so merged worker stats can show exactly how much re-warming the pack saved.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

import numpy as np

from repro.engine.array_ops import to_host


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of an :class:`OperatorCache`.

    ``preloaded`` counts entries seeded from an :class:`OperatorPack`
    (inserted without a miss); ``pack_hits`` counts the subset of ``hits``
    served by those preloaded entries.
    """

    hits: int
    misses: int
    entries: int
    evictions: int
    preloaded: int = 0
    pack_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form for benchmark metadata / JSON exports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "preloaded": self.preloaded,
            "pack_hits": self.pack_hits,
        }


def _pack_digest(entries: Tuple[Tuple[Hashable, Any], ...]) -> str:
    """Content digest of a pack payload (stable across pickling).

    The digest covers the array payloads (dtype, shape, raw bytes) plus the
    entry count and order — array bytes survive a pickle round trip exactly,
    so a worker can re-verify the digest after transport.  Keys are excluded:
    they may contain protocol objects whose serialization is not canonical.
    """
    digest = hashlib.sha256()
    digest.update(str(len(entries)).encode())
    for index, (_, value) in enumerate(entries):
        digest.update(str(index).encode())
        if isinstance(value, np.ndarray):
            digest.update(str(value.dtype).encode())
            digest.update(str(value.shape).encode())
            digest.update(np.ascontiguousarray(value).tobytes())
        else:
            digest.update(repr(value).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class OperatorPack:
    """A read-only snapshot of cache entries, shippable to pool workers.

    ``entries`` holds ``(key, frozen ndarray)`` pairs in the source cache's
    recency order (least recent first); ``digest`` is the content digest of
    the payload, re-verified by :meth:`OperatorCache.preload` so a corrupted
    or hand-edited pack is rejected instead of silently poisoning a worker's
    cache.  ``source`` names the exporting process (worker token or
    ``"parent"``) for stats attribution.
    """

    entries: Tuple[Tuple[Hashable, Any], ...]
    digest: str
    source: str = "parent"

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def nbytes(self) -> int:
        """Total payload size of the packed arrays, in bytes."""
        return sum(
            value.nbytes for _, value in self.entries if isinstance(value, np.ndarray)
        )


class OperatorCache:
    """A bounded LRU cache for numpy operators and other immutable values."""

    def __init__(self, max_entries: int = 512):
        if max_entries <= 0:
            raise ValueError("cache must allow at least one entry")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._preloaded_keys: set = set()
        self._preloaded = 0
        self._pack_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @staticmethod
    def _freeze(value: Any) -> Any:
        # Freeze a *copy*, never the caller's array: flipping ``writeable``
        # on the argument itself would silently freeze an array the caller
        # still owns, and a frozen view would share the buffer — letting the
        # caller mutate the cached entry through its own reference after
        # insertion.  The copy costs one allocation per miss; the hit path
        # stays copy-free.  Device-resident arrays (torch/cupy tensors, mock
        # device arrays) are pulled back to host numpy first: cached
        # operators and exported packs are always plain host-side arrays,
        # whichever backend built them.
        value = to_host(value)
        if isinstance(value, np.ndarray):
            frozen = value.copy()
            frozen.setflags(write=False)
            return frozen
        return value

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None``; updates the hit/miss counters."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            if key in self._preloaded_keys:
                self._pack_hits += 1
            return self._entries[key]
        self._misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert (or refresh) a value, evicting the least recently used entry.

        Returns the stored (frozen) value, so a miss hands out the same
        read-only object every later hit will.
        """
        frozen = self._freeze(value)
        # An explicit insert supersedes a pack-provided entry: later hits on
        # this key describe locally built work, not pack savings.
        self._preloaded_keys.discard(key)
        self._entries[key] = frozen
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._preloaded_keys.discard(evicted)
            self._evictions += 1
        return frozen

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building and inserting it on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            if key in self._preloaded_keys:
                self._pack_hits += 1
            return self._entries[key]
        self._misses += 1
        return self.put(key, builder())

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._preloaded_keys.clear()
        self._preloaded = 0
        self._pack_hits = 0

    # -- operator packs ------------------------------------------------------

    def export_pack(self, source: str = "parent") -> OperatorPack:
        """Snapshot the array entries as a shippable :class:`OperatorPack`.

        Only ``ndarray`` values with picklable keys are packed (the pack
        crosses process boundaries); entries ride in recency order so a
        preloading cache inherits the exporter's LRU ordering.  The packed
        arrays are the cache's own frozen entries — no copies; the pack is
        read-only by construction.
        """
        entries = []
        for key, value in self._entries.items():
            if not isinstance(value, np.ndarray):
                continue
            try:
                pickle.dumps(key)
            except Exception:
                continue  # unpicklable key: not shippable, skip
            entries.append((key, value))
        packed = tuple(entries)
        return OperatorPack(entries=packed, digest=_pack_digest(packed), source=source)

    def preload(self, pack: OperatorPack) -> int:
        """Seed this cache from a pack; returns the number of entries adopted.

        The pack's content digest is re-verified first — a corrupted pack
        raises ``ValueError`` instead of poisoning the cache.  Entries whose
        key is already present are skipped (local work wins); adopted
        entries are counted in ``preloaded`` (not as misses) and the hits
        they later serve are tracked as ``pack_hits``.  Adoption stops at
        ``max_entries`` so a pack can never evict local entries.
        """
        if _pack_digest(pack.entries) != pack.digest:
            raise ValueError(
                "operator pack digest mismatch: pack content was corrupted in transit"
            )
        adopted = 0
        for key, value in pack.entries:
            if key in self._entries:
                continue
            if len(self._entries) >= self.max_entries:
                break
            if isinstance(value, np.ndarray):
                if value.flags.writeable:
                    # Pickling does not preserve the writeable flag; re-freeze
                    # (the unpickled array is exclusively ours, so in place).
                    value.setflags(write=False)
            self._entries[key] = value
            self._preloaded_keys.add(key)
            adopted += 1
        self._preloaded += adopted
        return adopted

    def stats(self) -> CacheStats:
        """A snapshot of the cache counters (surfaced in benchmark metadata)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._entries),
            evictions=self._evictions,
            preloaded=self._preloaded,
            pack_hits=self._pack_hits,
        )
