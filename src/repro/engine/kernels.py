"""Device-agnostic contraction kernels behind the batched backends.

The hot paths of :class:`~repro.engine.backends.TransferMatrixBackend` and
:mod:`repro.engine.tree_contraction` — the stacked chain-Gram product, the
vectorized symmetrization recursion, the noisy superoperator grid
application and the signature-grouped tree Gram products — live here as pure
functions parameterized by ``(xp, dtype)``:

* ``xp`` is an :class:`~repro.engine.array_ops.ArrayModule` (numpy by
  default; torch / cupy / the transfer-counting mock as drop-ins).  Each
  kernel moves its host operands to the module exactly once (one ``asarray``
  per stacked operand per contraction group), runs the heavy products there,
  and pulls back a constant number of small result tables.
* ``dtype`` is the contraction dtype (``complex64`` fast path or the
  ``complex128`` reference).  Whatever the contraction dtype, the transfer
  recursion and all final probability accumulation run in host float64 —
  the dtype policy that keeps the complex64 path inside its 1e-5 parity
  tolerance (see :func:`repro.engine.array_ops.parity_tolerance`).

Einsum contractions route through :func:`cached_einsum`: the contraction
path of every ``(equation, shape-signature)`` pair is computed once with
``np.einsum_path`` and replayed on later calls (``optimize=path``), so
sweeps that evaluate thousands of identically-shaped groups never re-derive
a path.  Modules without numpy-style path support (torch) fall through to
their own einsum.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.array_ops import ArrayModule
from repro.engine.jobs import RIGHT_DENSE, RIGHT_PROJECTOR
from repro.quantum.channels import KrausChannel, apply_channel_grid, flip_probability

# --------------------------------------------------------------------------
# Einsum-path caching
# --------------------------------------------------------------------------

_EINSUM_PATH_CACHE: Dict[Tuple, list] = {}
_EINSUM_PATH_CACHE_MAX = 512
_einsum_path_hits = 0
_einsum_path_misses = 0


def cached_einsum(xp: ArrayModule, equation: str, *operands: Any) -> Any:
    """``xp.einsum`` with a per-(equation, shape-signature) precomputed path.

    Paths are derived once by ``np.einsum_path(..., optimize="optimal")`` on
    shape stand-ins and replayed as ``optimize=path`` on every later call
    with the same signature; modules that do not accept numpy-style path
    arguments (``supports_einsum_path = False``) use their native einsum.

    Two-operand contractions cache ``optimize=False``: with a single pairwise
    contraction there is no ordering to optimize, and numpy's "optimized"
    route (reshape + BLAS matmul) measurably loses to the direct einsum loop
    on the small-dimension trace gathers of the noisy path.  Path replay pays
    off exactly where ordering matters — three operands and up.
    """
    global _einsum_path_hits, _einsum_path_misses
    if not xp.supports_einsum_path:
        return xp.einsum(equation, *operands)
    key = (equation,) + tuple(tuple(operand.shape) for operand in operands)
    path = _EINSUM_PATH_CACHE.get(key)
    if path is None:
        _einsum_path_misses += 1
        if len(operands) < 3:
            path = False
        else:
            stand_ins = [
                np.zeros(operand.shape, dtype=np.float32) for operand in operands
            ]
            path = np.einsum_path(equation, *stand_ins, optimize="optimal")[0]
        if len(_EINSUM_PATH_CACHE) >= _EINSUM_PATH_CACHE_MAX:
            _EINSUM_PATH_CACHE.pop(next(iter(_EINSUM_PATH_CACHE)))
        _EINSUM_PATH_CACHE[key] = path
    else:
        _einsum_path_hits += 1
    return xp.einsum(equation, *operands, optimize=path)


def einsum_path_cache_info() -> Dict[str, int]:
    """Counters of the einsum-path cache (surfaced in benchmark metadata)."""
    return {
        "entries": len(_EINSUM_PATH_CACHE),
        "hits": _einsum_path_hits,
        "misses": _einsum_path_misses,
    }


def clear_einsum_path_cache() -> None:
    """Drop every cached path and reset the counters (test isolation)."""
    global _einsum_path_hits, _einsum_path_misses
    _EINSUM_PATH_CACHE.clear()
    _einsum_path_hits = 0
    _einsum_path_misses = 0


# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


def _accumulate(xp: ArrayModule, values: Any) -> np.ndarray:
    """Pull a module array back to the host as float64 (accumulation dtype)."""
    return np.asarray(xp.to_numpy(values), dtype=np.float64)


def transfer_recursion(weights: np.ndarray, transfer: np.ndarray) -> np.ndarray:
    """Fold per-step ``(B, 2, 2)`` transfer factors into the running weights.

    The vectorized symmetrization recursion of the chain contraction:
    ``weights[b, s]`` carries the joint weight of all symmetrization
    patterns whose latest bit is ``s``; each step multiplies it by that
    step's transfer matrix.  Runs in host float64 regardless of the
    contraction dtype — the accumulation half of the dtype policy.
    """
    for step in range(transfer.shape[1]):
        # Host-side allowlist: the accumulation half of the dtype policy runs
        # in host float64 on purpose (tiny (B,2,2) factors, precision first).
        weights = np.matmul(weights[:, None, :], transfer[:, step])[:, 0]  # repro-lint: disable=device-purity
    return weights


@lru_cache(maxsize=128)
def transfer_indices(num_intermediate: int) -> Tuple[np.ndarray, np.ndarray]:
    """Gram-row indices of (incoming, target) states for every chain step.

    Row 0 of the stacked state matrix is the left state; rows ``1 + 2j``
    and ``2 + 2j`` are slots 0/1 of intermediate node ``j``.  Step ``j``
    (``j >= 1``) tests the register forwarded by node ``j - 1`` under
    symmetrization bit ``s`` (its slot ``1 - s``) against slot ``n`` of
    node ``j``.
    """
    steps = np.arange(1, num_intermediate)
    incoming = 1 + 2 * (steps - 1)[:, None] + (1 - np.arange(2))[None, :]
    targets = 1 + 2 * steps[:, None] + np.arange(2)[None, :]
    return incoming, targets


# --------------------------------------------------------------------------
# Clean chain kernels
# --------------------------------------------------------------------------


def chain_gram_probabilities(
    xp: ArrayModule,
    dtype: np.dtype,
    stacked: np.ndarray,
    rights: Optional[np.ndarray],
    num_intermediate: int,
    right_kind: str,
) -> np.ndarray:
    """One-shot Gram evaluation of one ``(m, d, kind)`` chain group.

    ``stacked`` is the host-side ``(B, R, d)`` state stack (left state,
    intermediate pairs, and — structured right ends — the measurement
    vector as the last row); ``rights`` is the ``(B, d, d)`` operator stack
    for dense ends, else ``None``.  All SWAP-test overlaps of the group
    come from one batched Gram product on the module; the transfer
    recursion then folds them in host float64.
    """
    dense_end = right_kind == RIGHT_DENSE
    states = xp.asarray(stacked, dtype=dtype)
    gram_c = xp.matmul(xp.conj(states), xp.transpose(states, (0, 2, 1)))
    gram = _accumulate(xp, xp.abs(gram_c) ** 2)
    if dense_end:
        operators = xp.asarray(rights, dtype=dtype)
        final_states = states[:, [2 * num_intermediate, 2 * num_intermediate - 1]]
        accepts = _accumulate(
            xp,
            xp.real(
                (xp.matmul(xp.conj(final_states), operators) * final_states).sum(-1)
            ),
        )
    else:
        phi_row = 2 * num_intermediate + 1
        overlaps = gram[:, phi_row, [2 * num_intermediate, 2 * num_intermediate - 1]]
        accepts = overlaps if right_kind == RIGHT_PROJECTOR else 0.5 + 0.5 * overlaps
    # Step 1: SWAP test of the left state against both slots of node 1.
    weights = 0.5 * (0.5 + 0.5 * gram[:, 0, 1:3])  # (B, 2)
    if num_intermediate > 1:
        incoming, targets = transfer_indices(num_intermediate)
        step_overlaps = gram[:, incoming[:, :, None], targets[:, None, :]]
        weights = transfer_recursion(weights, 0.5 * (0.5 + 0.5 * step_overlaps))
    return np.sum(weights * accepts, axis=1)


def chain_terminal_probabilities(
    xp: ArrayModule,
    dtype: np.dtype,
    lefts: np.ndarray,
    rights: np.ndarray,
    right_kind: str,
) -> np.ndarray:
    """Zero-intermediate chains: the left state straight into the right end."""
    states = xp.asarray(lefts, dtype=dtype)
    operators = xp.asarray(rights, dtype=dtype)
    if right_kind == RIGHT_DENSE:
        values = xp.real(
            (xp.conj(states) * xp.matmul(operators, states[..., None])[..., 0]).sum(-1)
        )
        return _accumulate(xp, values)
    overlaps = _accumulate(xp, xp.abs((xp.conj(operators) * states).sum(-1)) ** 2)
    return overlaps if right_kind == RIGHT_PROJECTOR else 0.5 + 0.5 * overlaps


def chain_adjacent_probabilities(
    xp: ArrayModule,
    dtype: np.dtype,
    lefts: np.ndarray,
    pairs: np.ndarray,
    rights: np.ndarray,
    num_intermediate: int,
    right_kind: str,
) -> np.ndarray:
    """Long-chain path: batched overlaps of adjacent nodes only, O(m d) per job."""
    lefts_dev = xp.asarray(lefts, dtype=dtype)
    pairs_dev = xp.asarray(pairs, dtype=dtype)  # (B, m, 2, d)
    rights_dev = xp.asarray(rights, dtype=dtype)
    first_overlaps = _accumulate(
        xp,
        xp.abs(xp.matmul(xp.conj(pairs_dev[:, 0]), lefts_dev[..., None])[..., 0]) ** 2,
    )
    weights = 0.5 * (0.5 + 0.5 * first_overlaps)  # (B, 2)
    if num_intermediate > 1:
        # incoming[b, j, s]: the state node j+1 receives when node j's
        # symmetrization bit is s (node j's reversed slot order).
        incoming = pairs_dev[:, : num_intermediate - 1][:, :, [1, 0]]
        targets = pairs_dev[:, 1:]
        step_overlaps = _accumulate(
            xp,
            xp.abs(xp.matmul(xp.conj(incoming), xp.transpose(targets, (0, 1, 3, 2))))
            ** 2,
        )
        weights = transfer_recursion(weights, 0.5 * (0.5 + 0.5 * step_overlaps))
    final_states = pairs_dev[:, -1][:, [1, 0]]  # (B, 2, d)
    if right_kind == RIGHT_DENSE:
        accepts = _accumulate(
            xp,
            xp.real(
                (xp.matmul(xp.conj(final_states), rights_dev) * final_states).sum(-1)
            ),
        )
    else:
        overlaps = _accumulate(
            xp,
            xp.abs(xp.matmul(xp.conj(final_states), rights_dev[..., None])[..., 0])
            ** 2,
        )
        accepts = overlaps if right_kind == RIGHT_PROJECTOR else 0.5 + 0.5 * overlaps
    return np.sum(weights * accepts, axis=1)


# --------------------------------------------------------------------------
# Noisy (density-matrix) chain kernel
# --------------------------------------------------------------------------


def apply_noise_grid(
    grid: Sequence[Sequence[Optional[KrausChannel]]], densities: np.ndarray, dtype: np.dtype
) -> np.ndarray:
    """Channel grid application in the contraction dtype (host side).

    Kraus operators and superoperators are host-resident numpy (they live in
    caches and noise models), so the grid is applied on the host and the
    transformed density stack crosses to the device once, afterwards.  A
    complex64 contraction dtype propagates through the closed-form channel
    expressions, halving the bandwidth of the density pipeline.
    """
    return apply_channel_grid(grid, np.asarray(densities, dtype=dtype))


def noisy_chain_probabilities(
    xp: ArrayModule,
    dtype: np.dtype,
    states: np.ndarray,
    kept_grid: Sequence[Sequence[Optional[KrausChannel]]],
    sent_grid: Sequence[Sequence[Optional[KrausChannel]]],
    right_grid: Sequence[Optional[KrausChannel]],
    rights: np.ndarray,
    eps: np.ndarray,
    num_intermediate: int,
    right_kind: str,
) -> np.ndarray:
    """Evaluate one noisy ``(m, d, kind)`` group on stacked density rows.

    ``states`` is the host ``(B, 1 + 2m, d)`` pure-state stack (left state
    plus intermediate pairs); ``kept_grid`` / ``sent_grid`` are the per-job
    channel grids for the kept/sent forms; ``right_grid`` the per-job
    right-end preparation channels (vector ends, else ``None``); ``rights``
    the right-end operator or vector stack; ``eps`` the per-job readout
    errors.  Density-row layout per job: row 0 is the left state as *sent*
    across edge 0; rows ``1 .. 2m`` the intermediate pairs in *kept* form
    (node channel applied); rows ``2m + 1 .. 4m`` the same pairs in *sent*
    form (outgoing edge channel on top); the last row (vector right ends)
    the measurement target.  The contraction is the clean transfer recursion
    with squared overlaps replaced by Hilbert-Schmidt traces of the
    densities — only the O(m) traces the recursion reads are gathered, in
    one einsum on the module — and every test factor passes the readout
    flip.
    """
    batch, _, dim = states.shape
    m = num_intermediate
    dense_end = right_kind == RIGHT_DENSE
    num_rows = 1 + 4 * m + (0 if dense_end else 1)
    working = np.asarray(states, dtype=dtype)
    pure = working[:, :, :, None] * working.conj()[:, :, None, :]
    kept = apply_noise_grid(kept_grid, pure, dtype)
    sent = apply_noise_grid(sent_grid, kept, dtype)
    stacked = np.empty((batch, num_rows, dim, dim), dtype=dtype)
    stacked[:, 1 : 1 + 2 * m] = kept[:, 1:]
    stacked[:, 0] = sent[:, 0]
    if m:
        stacked[:, 1 + 2 * m : 1 + 4 * m] = sent[:, 1:]
    if not dense_end:
        targets = np.asarray(rights, dtype=dtype)
        target_block = targets[:, :, None] * targets.conj()[:, None, :]
        # Right-end preparation noise acts on the verifier's reference
        # state, i.e. the measurement target density.
        stacked[:, -1:] = apply_noise_grid(right_grid, target_block[:, None], dtype)
    if m == 0:
        device_stack = xp.asarray(stacked, dtype=dtype)
        if dense_end:
            operators = xp.asarray(rights, dtype=dtype)
            accepts = _accumulate(
                xp,
                xp.real(cached_einsum(xp, "bij,bji->b", operators, device_stack[:, 0])),
            )
        else:
            overlaps = _accumulate(
                xp,
                xp.real(
                    cached_einsum(
                        xp, "bij,bji->b", device_stack[:, -1], device_stack[:, 0]
                    )
                ),
            )
            accepts = (
                overlaps if right_kind == RIGHT_PROJECTOR else 0.5 + 0.5 * overlaps
            )
        return flip_probability(accepts, eps)
    # Only O(m) Hilbert-Schmidt traces are read by the transfer recursion,
    # so gather exactly those pairs into one einsum instead of forming the
    # full row-by-row trace Gram.
    rows_a: List[int] = [0, 0]
    rows_b: List[int] = [1, 2]
    for step in range(m - 1):
        # Node j forwards its sent slot 1 - s; node j + 1 tests its kept slot s'.
        for s in (0, 1):
            for s_next in (0, 1):
                rows_a.append(2 * m + 1 + 2 * step + (1 - s))
                rows_b.append(1 + 2 * (step + 1) + s_next)
    # Right end: the last node's sent slots, reversed (bit s forwards 1 - s).
    final_rows = [4 * m, 4 * m - 1]
    if not dense_end:
        rows_a += [num_rows - 1, num_rows - 1]
        rows_b += final_rows
    device_stack = xp.asarray(stacked, dtype=dtype)
    traces = _accumulate(
        xp,
        xp.real(
            cached_einsum(
                xp, "bkij,bkji->bk", device_stack[:, rows_a], device_stack[:, rows_b]
            )
        ),
    )
    # Step 1: SWAP test of the transmitted left state against the kept
    # forms of node 1 (rows 1, 2), each flipped by the readout error.
    weights = 0.5 * flip_probability(0.5 + 0.5 * traces[:, 0:2], eps[:, None])
    if m > 1:
        step_overlaps = traces[:, 2 : 2 + 4 * (m - 1)].reshape(batch, m - 1, 2, 2)
        weights = transfer_recursion(
            weights, 0.5 * flip_probability(0.5 + 0.5 * step_overlaps, eps[:, None, None, None])
        )
    if dense_end:
        operators = xp.asarray(rights, dtype=dtype)
        accepts = _accumulate(
            xp,
            xp.real(
                cached_einsum(
                    xp, "bij,bsji->bs", operators, device_stack[:, final_rows]
                )
            ),
        )
    else:
        overlaps = traces[:, -2:]
        accepts = overlaps if right_kind == RIGHT_PROJECTOR else 0.5 + 0.5 * overlaps
    accepts = flip_probability(accepts, eps[:, None])
    return np.sum(weights * accepts, axis=1)


# --------------------------------------------------------------------------
# Tree-group Gram kernels
# --------------------------------------------------------------------------


def batched_overlap_grams(
    xp: ArrayModule, dtype: np.dtype, stacks: Sequence[np.ndarray]
) -> Tuple[List[np.ndarray], Optional[np.ndarray]]:
    """Per-factor squared-overlap Grams of one signature group.

    Returns ``(overlap_sq, cgram)``: ``overlap_sq[f][b, r, s]`` is the host
    float64 squared overlap of rows ``r, s`` in tensor factor ``f``;
    ``cgram`` is the complex Gram of single-factor groups (host complex128 —
    the permutation-test permanent accumulates there), ``None`` otherwise.
    """
    if len(stacks) == 1:
        states = xp.asarray(stacks[0], dtype=dtype)
        gram_c = xp.matmul(xp.conj(states), xp.transpose(states, (0, 2, 1)))
        overlap_sq = _accumulate(xp, xp.abs(gram_c) ** 2)
        # Host-side allowlist: the permutation-test permanent accumulates in
        # host complex128 whatever the contraction dtype (dtype policy).
        cgram = np.asarray(xp.to_numpy(gram_c), dtype=np.complex128)  # repro-lint: disable=dtype-discipline
        return [overlap_sq], cgram
    overlap_sq = []
    for stack in stacks:
        states = xp.asarray(stack, dtype=dtype)
        gram_c = xp.matmul(xp.conj(states), xp.transpose(states, (0, 2, 1)))
        overlap_sq.append(_accumulate(xp, xp.abs(gram_c) ** 2))
    return overlap_sq, None


def batched_trace_gram(
    xp: ArrayModule, dtype: np.dtype, densities: np.ndarray
) -> np.ndarray:
    """Hilbert-Schmidt trace Gram ``Tr(rho_r rho_s)`` of stacked densities.

    ``densities`` is the host ``(B, R, d, d)`` stack; the Gram is one
    batched matmul on the vectorized rows (``Tr(rho sigma) = vec(rho) .
    conj(vec(sigma))`` for Hermitian matrices), returned as host float64.
    """
    batch, rows, dim = densities.shape[0], densities.shape[1], densities.shape[2]
    vectors = xp.asarray(
        np.asarray(densities, dtype=dtype).reshape(batch, rows, dim * dim),
        dtype=dtype,
    )
    gram = xp.real(xp.matmul(vectors, xp.transpose(xp.conj(vectors), (0, 2, 1))))
    return _accumulate(xp, gram)


def batched_measure_dense(
    xp: ArrayModule, dtype: np.dtype, states: np.ndarray, operators: np.ndarray
) -> np.ndarray:
    """``<psi_b| O_b |psi_b>`` for one stacked measurement node (host float64)."""
    states_dev = xp.asarray(states, dtype=dtype)
    operators_dev = xp.asarray(operators, dtype=dtype)
    return _accumulate(
        xp,
        xp.real(
            cached_einsum(
                xp, "bi,bij,bj->b", xp.conj(states_dev), operators_dev, states_dev
            )
        ),
    )
