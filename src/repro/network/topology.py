"""Network topologies for distributed verification.

A :class:`Network` is a simple connected graph together with an ordered list
of *terminals* — the nodes that hold the distributed inputs ``x_1, ..., x_t``.
Node identifiers are arbitrary hashable values; the constructors below use
strings such as ``"v0"`` for paths and ``"leaf3"`` for stars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import TopologyError
from repro.utils.rng import RngLike, ensure_rng

NodeId = Hashable


@dataclass
class Network:
    """A connected verification network with designated terminal nodes."""

    graph: nx.Graph
    terminals: Tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise TopologyError("network must contain at least one node")
        if not nx.is_connected(self.graph):
            raise TopologyError("network must be connected")
        terminals = tuple(self.terminals)
        if len(terminals) == 0:
            raise TopologyError("network must have at least one terminal")
        if len(set(terminals)) != len(terminals):
            raise TopologyError(f"duplicate terminals: {terminals}")
        for terminal in terminals:
            if terminal not in self.graph:
                raise TopologyError(f"terminal {terminal!r} is not a node of the graph")
        self.terminals = terminals

    # ------------------------------------------------------------- queries

    @property
    def nodes(self) -> List[NodeId]:
        """All nodes of the network."""
        return list(self.graph.nodes())

    @property
    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """All edges of the network."""
        return list(self.graph.edges())

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.graph.number_of_nodes()

    @property
    def num_terminals(self) -> int:
        """Number of terminals ``t``."""
        return len(self.terminals)

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Graph distance between two nodes."""
        return int(nx.shortest_path_length(self.graph, u, v))

    def eccentricity(self, node: NodeId) -> int:
        """Maximum distance from ``node`` to any other node."""
        return int(nx.eccentricity(self.graph, node))

    @property
    def radius(self) -> int:
        """The network radius ``r = min_u max_v dist(u, v)`` (Section 2)."""
        return int(nx.radius(self.graph))

    @property
    def diameter(self) -> int:
        """The network diameter."""
        return int(nx.diameter(self.graph))

    @property
    def max_degree(self) -> int:
        """Maximum degree ``d_max`` (used by the LOCC conversion, Lemma 20)."""
        return max(dict(self.graph.degree()).values())

    def most_central_terminal(self) -> NodeId:
        """The terminal minimising its maximum distance to the other terminals.

        This is the node ``u_1`` chosen as tree root in Section 3.3.
        """
        best_terminal = None
        best_value = None
        for candidate in self.terminals:
            value = max(self.distance(candidate, other) for other in self.terminals)
            if best_value is None or value < best_value:
                best_value = value
                best_terminal = candidate
        return best_terminal

    def terminal_radius(self) -> int:
        """``min_{terminal u} max_{terminal v} dist(u, v)`` over terminals."""
        root = self.most_central_terminal()
        return max(self.distance(root, other) for other in self.terminals)

    def shortest_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """A shortest path between two nodes, inclusive of both endpoints."""
        return list(nx.shortest_path(self.graph, u, v))

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbours of a node."""
        return list(self.graph.neighbors(node))

    def is_terminal(self, node: NodeId) -> bool:
        """True when the node holds an input."""
        return node in set(self.terminals)

    def with_terminals(self, terminals: Sequence[NodeId]) -> "Network":
        """The same graph with a different set of terminals."""
        return Network(self.graph.copy(), tuple(terminals))


def path_network(length: int, terminals: Optional[Sequence[NodeId]] = None) -> Network:
    """The path ``v0 - v1 - ... - v_length`` with terminals at the extremities.

    ``length`` is the number of edges ``r``; the path has ``r + 1`` nodes.
    """
    if length < 1:
        raise TopologyError("a path network needs length (number of edges) >= 1")
    graph = nx.Graph()
    names = [f"v{i}" for i in range(length + 1)]
    graph.add_nodes_from(names)
    for i in range(length):
        graph.add_edge(names[i], names[i + 1])
    if terminals is None:
        terminals = (names[0], names[-1])
    return Network(graph, tuple(terminals))


def star_network(num_leaves: int, terminals: Optional[Sequence[NodeId]] = None) -> Network:
    """A star with a centre node and ``num_leaves`` leaves; leaves are terminals."""
    if num_leaves < 1:
        raise TopologyError("a star network needs at least one leaf")
    graph = nx.Graph()
    centre = "centre"
    leaves = [f"leaf{i}" for i in range(num_leaves)]
    graph.add_node(centre)
    for leaf in leaves:
        graph.add_edge(centre, leaf)
    if terminals is None:
        terminals = tuple(leaves)
    return Network(graph, tuple(terminals))


def complete_network(num_nodes: int, num_terminals: int) -> Network:
    """The complete graph on ``num_nodes`` nodes with the first ``num_terminals`` as terminals."""
    if num_nodes < 1:
        raise TopologyError("a complete network needs at least one node")
    if num_terminals < 1 or num_terminals > num_nodes:
        raise TopologyError("number of terminals must be between 1 and the node count")
    graph = nx.complete_graph(num_nodes)
    relabel = {i: f"n{i}" for i in range(num_nodes)}
    graph = nx.relabel_nodes(graph, relabel)
    terminals = tuple(f"n{i}" for i in range(num_terminals))
    return Network(graph, terminals)


def cycle_network(num_nodes: int, num_terminals: int = 2) -> Network:
    """A cycle on ``num_nodes`` nodes with evenly spread terminals."""
    if num_nodes < 3:
        raise TopologyError("a cycle needs at least three nodes")
    if num_terminals < 1 or num_terminals > num_nodes:
        raise TopologyError("number of terminals must be between 1 and the node count")
    graph = nx.cycle_graph(num_nodes)
    relabel = {i: f"c{i}" for i in range(num_nodes)}
    graph = nx.relabel_nodes(graph, relabel)
    stride = num_nodes // num_terminals
    terminals = tuple(f"c{(i * stride) % num_nodes}" for i in range(num_terminals))
    return Network(graph, terminals)


def binary_tree_network(depth: int, num_terminals: Optional[int] = None) -> Network:
    """A complete binary tree of the given depth; terminals sit at the leaves.

    ``num_terminals`` restricts the terminals to the first leaves in label
    order (all ``2^depth`` leaves when omitted).
    """
    if depth < 1:
        raise TopologyError("a binary tree network needs depth >= 1")
    graph = nx.balanced_tree(2, depth)
    relabel = {i: f"b{i}" for i in graph.nodes()}
    graph = nx.relabel_nodes(graph, relabel)
    leaves = sorted(
        (node for node in graph.nodes() if graph.degree(node) == 1),
        key=lambda name: int(name[1:]),
    )
    if num_terminals is None:
        terminals: Sequence[NodeId] = leaves
    else:
        if num_terminals < 1 or num_terminals > len(leaves):
            raise TopologyError(
                f"number of terminals must be between 1 and the {len(leaves)} leaves"
            )
        terminals = leaves[:num_terminals]
    return Network(graph, tuple(terminals))


def grid_network(
    rows: int, cols: int, num_terminals: Optional[int] = None
) -> Network:
    """A ``rows x cols`` lattice; terminals default to the grid corners.

    Nodes are named ``g{row}_{col}``.  ``num_terminals`` restricts the
    terminals to the first corners in reading order (all four — or fewer on
    degenerate grids — when omitted).
    """
    if rows < 1 or cols < 1:
        raise TopologyError("a grid network needs at least one row and one column")
    if rows * cols < 2:
        raise TopologyError("a grid network needs at least two nodes")
    graph = nx.grid_2d_graph(rows, cols)
    relabel = {(i, j): f"g{i}_{j}" for i, j in graph.nodes()}
    graph = nx.relabel_nodes(graph, relabel)
    corner_coords = [(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)]
    corners = []
    for coordinate in corner_coords:
        name = f"g{coordinate[0]}_{coordinate[1]}"
        if name not in corners:
            corners.append(name)
    if num_terminals is None:
        terminals: Sequence[NodeId] = corners
    else:
        if num_terminals < 1 or num_terminals > len(corners):
            raise TopologyError(
                f"number of terminals must be between 1 and the {len(corners)} corners"
            )
        terminals = corners[:num_terminals]
    return Network(graph, tuple(terminals))


def random_graph_network(
    num_nodes: int,
    num_terminals: int,
    extra_edge_probability: float = 0.2,
    rng: RngLike = None,
) -> Network:
    """A connected random graph: a random spanning tree plus chance chords.

    Connectedness is guaranteed by construction (a random recursive tree
    backbone); every non-tree pair then becomes an edge independently with
    ``extra_edge_probability``.  Terminals are chosen uniformly at random.
    """
    if num_nodes < 2:
        raise TopologyError("a random graph needs at least two nodes")
    if num_terminals < 1 or num_terminals > num_nodes:
        raise TopologyError("number of terminals must be between 1 and the node count")
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise TopologyError("extra-edge probability must lie in [0, 1]")
    generator = ensure_rng(rng)
    graph = nx.Graph()
    graph.add_node("t0")
    for index in range(1, num_nodes):
        parent = int(generator.integers(0, index))
        graph.add_edge(f"t{parent}", f"t{index}")
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            u, v = f"t{i}", f"t{j}"
            if not graph.has_edge(u, v) and generator.random() < extra_edge_probability:
                graph.add_edge(u, v)
    node_names = [f"t{i}" for i in range(num_nodes)]
    chosen = generator.choice(num_nodes, size=num_terminals, replace=False)
    terminals = tuple(node_names[int(i)] for i in sorted(chosen))
    return Network(graph, terminals)


def random_tree_network(
    num_nodes: int, num_terminals: int, rng: RngLike = None
) -> Network:
    """A uniformly random labelled tree with randomly chosen terminals."""
    if num_nodes < 2:
        raise TopologyError("a random tree needs at least two nodes")
    if num_terminals < 1 or num_terminals > num_nodes:
        raise TopologyError("number of terminals must be between 1 and the node count")
    generator = ensure_rng(rng)
    # Build a random tree by attaching each new node to a uniformly random
    # earlier node (random recursive tree); connectedness is guaranteed.
    graph = nx.Graph()
    graph.add_node("t0")
    for index in range(1, num_nodes):
        parent = int(generator.integers(0, index))
        graph.add_edge(f"t{parent}", f"t{index}")
    node_names = [f"t{i}" for i in range(num_nodes)]
    chosen = generator.choice(num_nodes, size=num_terminals, replace=False)
    terminals = tuple(node_names[int(i)] for i in sorted(chosen))
    return Network(graph, terminals)
