"""Verification-tree construction (Section 3.3 of the paper).

For a network ``G`` with terminals ``u_1, ..., u_t`` the protocols on general
graphs work over a tree ``T`` rooted at the most central terminal ``u_1``,
whose leaves are the remaining terminals, with depth at most ``r + 1``.  The
construction of the paper starts from a BFS tree, truncates it below terminals
with no terminal descendants, and finally re-attaches any internal terminal
``u_i`` as a fresh leaf ``u_i'`` so that every terminal has degree one in the
verification tree.  (The paper notes a deterministic dMA protocol, Lemma 18,
certifies the tree; here the tree is constructed honestly by the library.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from repro.exceptions import TopologyError
from repro.network.topology import Network, NodeId


@dataclass
class VerificationTree:
    """A rooted tree used by the general-graph protocols.

    Attributes
    ----------
    tree:
        A directed graph with edges pointing from parent to child.
    root:
        The root node (the most central terminal by default).
    terminal_leaves:
        Mapping from each original terminal to the leaf of the tree that
        carries its input (either the terminal itself or its shadow leaf).
    shadow_of:
        Mapping from shadow leaves back to the original terminal they mirror.
    """

    tree: nx.DiGraph
    root: NodeId
    terminal_leaves: Dict[NodeId, NodeId]
    shadow_of: Dict[NodeId, NodeId] = field(default_factory=dict)

    @property
    def nodes(self) -> List[NodeId]:
        """All nodes of the verification tree."""
        return list(self.tree.nodes())

    def children(self, node: NodeId) -> List[NodeId]:
        """Children of a node."""
        return list(self.tree.successors(node))

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of a node (``None`` for the root)."""
        parents = list(self.tree.predecessors(node))
        if not parents:
            return None
        return parents[0]

    def is_leaf(self, node: NodeId) -> bool:
        """True when the node has no children."""
        return self.tree.out_degree(node) == 0

    @property
    def leaves(self) -> List[NodeId]:
        """All leaves of the tree."""
        return [node for node in self.tree.nodes() if self.is_leaf(node)]

    @property
    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        lengths = nx.single_source_shortest_path_length(self.tree, self.root)
        return max(lengths.values()) if lengths else 0

    def path_from_root(self, node: NodeId) -> List[NodeId]:
        """The unique path from the root to the given node."""
        return nx.shortest_path(self.tree, self.root, node)

    def path_between(self, leaf: NodeId) -> List[NodeId]:
        """Alias of :meth:`path_from_root`, named for call-site readability."""
        return self.path_from_root(leaf)

    def max_children(self) -> int:
        """Maximum number of children over internal nodes."""
        degrees = [self.tree.out_degree(node) for node in self.tree.nodes()]
        return max(degrees) if degrees else 0

    def topological_order(self) -> List[NodeId]:
        """All nodes, every parent before its children (root first).

        This is the node order the tree-program compilers use: the engine's
        :class:`~repro.engine.jobs.TreeJob` requires parents to precede their
        children so the leaf-to-root contraction can run index-reversed.
        """
        return list(nx.topological_sort(self.tree))

    def terminal_path(self, terminal: NodeId) -> List[NodeId]:
        """Physical nodes on the tree path from the root to a terminal.

        Shadow leaves are folded back onto the original node they mirror, so
        the returned path can carry protocol registers on real network nodes
        (used by the relay protocol when it runs along a spanning-tree path).
        """
        if terminal not in self.terminal_leaves:
            raise TopologyError(f"{terminal!r} is not a terminal of this tree")
        path: List[NodeId] = []
        for node in self.path_from_root(self.terminal_leaves[terminal]):
            physical = self.shadow_of.get(node, node)
            if not path or path[-1] != physical:
                path.append(physical)
        return path

    def validate(self) -> None:
        """Check the structural invariants promised by the construction."""
        if not nx.is_arborescence(self.tree):
            raise TopologyError("verification tree is not an arborescence")
        for terminal, leaf in self.terminal_leaves.items():
            if leaf == self.root:
                # The root terminal keeps its input and plays both the root
                # and the terminal roles (Section 3.3 / Algorithm 5).
                continue
            if not self.is_leaf(leaf):
                raise TopologyError(
                    f"terminal {terminal!r} is mapped to non-leaf {leaf!r}"
                )


def build_verification_tree(
    network: Network, root: Optional[NodeId] = None
) -> VerificationTree:
    """Construct the verification tree of Section 3.3 for a network.

    The root defaults to the most central terminal.  The returned tree has
    every terminal attached as a leaf: internal terminals are mirrored by a
    shadow leaf named ``(terminal, "shadow")`` whose protocol actions are
    executed by the original node, exactly as described in the paper.
    """
    if root is None:
        root = network.most_central_terminal()
    if root not in network.graph:
        raise TopologyError(f"root {root!r} is not a node of the network")

    bfs_tree = nx.bfs_tree(network.graph, root)
    terminals = set(network.terminals)

    # Iteratively truncate leaves that are neither terminals nor ancestors of
    # terminals; this realises the truncation step of the paper's construction.
    keep = _nodes_on_terminal_paths(bfs_tree, root, terminals)
    pruned = bfs_tree.subgraph(keep).copy()

    terminal_leaves: Dict[NodeId, NodeId] = {}
    shadow_of: Dict[NodeId, NodeId] = {}
    tree = nx.DiGraph()
    tree.add_nodes_from(pruned.nodes())
    tree.add_edges_from(pruned.edges())

    for terminal in network.terminals:
        if terminal == root:
            # The root keeps its input; it plays both the root role and the
            # terminal role, as in the paper's protocols.
            terminal_leaves[terminal] = terminal
            continue
        if tree.out_degree(terminal) == 0:
            terminal_leaves[terminal] = terminal
        else:
            shadow = (terminal, "shadow")
            tree.add_edge(terminal, shadow)
            terminal_leaves[terminal] = shadow
            shadow_of[shadow] = terminal

    result = VerificationTree(tree=tree, root=root, terminal_leaves=terminal_leaves, shadow_of=shadow_of)
    result.validate()
    return result


def _nodes_on_terminal_paths(tree: nx.DiGraph, root: NodeId, terminals: set) -> set:
    """Nodes lying on a path from the root to some terminal."""
    keep = set()
    for terminal in terminals:
        if terminal not in tree:
            raise TopologyError(f"terminal {terminal!r} missing from BFS tree")
        path = nx.shortest_path(tree, root, terminal)
        keep.update(path)
    keep.add(root)
    return keep
