"""Network substrate: topologies, spanning trees and distributed bookkeeping.

Networks in the paper are simple connected graphs whose nodes are verifiers;
a subset of *terminal* nodes hold the distributed inputs.  This package wraps
:mod:`networkx` with the quantities the protocols need (radius, eccentricity,
most-central terminal, path extraction) and implements the spanning-tree
construction of Section 3.3 with terminal truncation, so that every terminal
becomes a leaf of the verification tree.
"""

from repro.network.topology import (
    Network,
    binary_tree_network,
    complete_network,
    cycle_network,
    grid_network,
    path_network,
    random_graph_network,
    random_tree_network,
    star_network,
)
from repro.network.spanning_tree import VerificationTree, build_verification_tree

__all__ = [
    "Network",
    "binary_tree_network",
    "path_network",
    "star_network",
    "complete_network",
    "cycle_network",
    "grid_network",
    "random_graph_network",
    "random_tree_network",
    "VerificationTree",
    "build_verification_tree",
]
