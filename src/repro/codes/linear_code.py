"""Binary linear codes over GF(2).

A :class:`LinearCode` is described by a ``k x m`` generator matrix ``G`` over
GF(2); a message of ``k`` bits encodes to the codeword ``x G`` of ``m`` bits.
The minimum distance is computed exactly (by enumerating all ``2^k - 1``
non-zero codewords), which is feasible for the message lengths used in exact
protocol simulation (``k`` up to roughly 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import EncodingError
from repro.utils.bitstrings import bitstring_to_array, validate_bitstring
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class LinearCode:
    """A binary linear code given by its generator matrix (one row per message bit)."""

    generator: np.ndarray
    _min_distance_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        gen = np.asarray(self.generator, dtype=np.int64) % 2
        if gen.ndim != 2 or gen.size == 0:
            raise EncodingError("generator matrix must be a non-empty 2-D array")
        object.__setattr__(self, "generator", gen)

    @property
    def message_length(self) -> int:
        """Number of message bits ``k``."""
        return int(self.generator.shape[0])

    @property
    def codeword_length(self) -> int:
        """Number of codeword bits ``m``."""
        return int(self.generator.shape[1])

    @property
    def rate(self) -> float:
        """Code rate ``k / m``."""
        return self.message_length / self.codeword_length

    def encode(self, message: str) -> str:
        """Encode a ``k``-bit message string into an ``m``-bit codeword string."""
        validate_bitstring(message, length=self.message_length)
        vector = bitstring_to_array(message)
        codeword = (vector @ self.generator) % 2
        return "".join(str(int(b)) for b in codeword)

    def minimum_distance(self) -> int:
        """Exact minimum distance (weight of the lightest non-zero codeword)."""
        if "d" in self._min_distance_cache:
            return self._min_distance_cache["d"]
        k = self.message_length
        if k > 20:
            raise EncodingError(
                "exact minimum distance enumeration is limited to k <= 20 message bits"
            )
        best = self.codeword_length
        for value in range(1, 1 << k):
            message = np.array([(value >> (k - 1 - i)) & 1 for i in range(k)], dtype=np.int64)
            codeword = (message @ self.generator) % 2
            weight = int(codeword.sum())
            if weight < best:
                best = weight
        self._min_distance_cache["d"] = best
        return best

    def relative_distance(self) -> float:
        """Minimum distance divided by the codeword length."""
        return self.minimum_distance() / self.codeword_length

    def fingerprint_overlap_bound(self) -> float:
        """Maximum fingerprint overlap ``1 - delta`` implied by the code distance."""
        return 1.0 - self.relative_distance()


def hadamard_code(message_length: int) -> LinearCode:
    """The Hadamard code: codeword positions are all ``2^k`` inner products.

    Relative distance is exactly 1/2, at the price of exponential codeword
    length; used for exact small-``n`` fingerprints where the overlap bound
    matters more than the code rate.
    """
    if message_length <= 0:
        raise EncodingError("message length must be positive")
    k = message_length
    columns = []
    for value in range(1 << k):
        columns.append([(value >> (k - 1 - i)) & 1 for i in range(k)])
    generator = np.array(columns, dtype=np.int64).T
    return LinearCode(generator)


def repetition_code(message_length: int, repetitions: int) -> LinearCode:
    """Each message bit is repeated ``repetitions`` times (distance = repetitions)."""
    if message_length <= 0 or repetitions <= 0:
        raise EncodingError("message length and repetitions must be positive")
    blocks = []
    for row in range(message_length):
        block = np.zeros(message_length * repetitions, dtype=np.int64)
        block[row * repetitions : (row + 1) * repetitions] = 1
        blocks.append(block)
    return LinearCode(np.array(blocks, dtype=np.int64))


def random_linear_code(
    message_length: int,
    codeword_length: int,
    min_relative_distance: float = 0.25,
    rng: RngLike = None,
    max_attempts: int = 200,
) -> LinearCode:
    """A random linear code whose exact relative distance meets the target.

    Random linear codes meet the Gilbert–Varshamov bound with high probability,
    so for moderate rates a few attempts suffice.  The returned code's distance
    has been verified exactly, so downstream overlap bounds are rigorous for
    the generated instance.
    """
    if codeword_length < message_length:
        raise EncodingError("codeword length must be at least the message length")
    generator_rng = ensure_rng(rng)
    best: Optional[LinearCode] = None
    best_distance = -1.0
    for _ in range(max_attempts):
        generator = generator_rng.integers(0, 2, size=(message_length, codeword_length))
        code = LinearCode(generator)
        if np.linalg.matrix_rank(code.generator) < message_length:
            continue
        distance = code.relative_distance()
        if distance >= min_relative_distance:
            return code
        if distance > best_distance:
            best_distance = distance
            best = code
    if best is None:
        raise EncodingError("failed to generate a full-rank random linear code")
    raise EncodingError(
        f"failed to reach relative distance {min_relative_distance} after "
        f"{max_attempts} attempts (best was {best_distance:.3f}); "
        "increase the codeword length"
    )
