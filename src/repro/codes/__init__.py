"""Classical error-correcting codes used to build quantum fingerprints.

The quantum fingerprint construction of Buhrman, Cleve, Watrous and de Wolf
(referenced as [BCWdW01] in the paper) maps an ``n``-bit string ``x`` through a
binary code ``E`` with large minimum distance and prepares the superposition
``|h_x> = (1/sqrt(M)) sum_i |i>|E(x)_i>``.  The pairwise fingerprint overlap is
``1 - d(E(x), E(y)) / M``, so any code with relative distance ``delta`` yields
fingerprints with overlap at most ``1 - delta``.

This package provides binary linear codes with exactly computable minimum
distances for the small input lengths used in exact simulation, plus the
Hadamard code whose relative distance is exactly 1/2.
"""

from repro.codes.linear_code import LinearCode, hadamard_code, random_linear_code, repetition_code

__all__ = ["LinearCode", "hadamard_code", "random_linear_code", "repetition_code"]
