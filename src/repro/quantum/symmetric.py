"""The symmetric subspace of ``k`` copies of a ``d``-dimensional system.

The permutation test of Algorithm 2 is equivalent to the two-outcome
projective measurement ``{Pi_sym, I - Pi_sym}`` where ``Pi_sym`` is the
projector onto the symmetric subspace
``H_S^k = { |Phi> : U_pi |Phi> = |Phi> for all pi in S_k }``.
The paper identifies ``Pi_sym = (1/k!) sum_pi U_pi`` (Section 3.1); this module
constructs that projector explicitly.
"""

from __future__ import annotations

from itertools import permutations as iter_permutations
from math import comb, factorial

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.quantum.gates import permutation_unitary


def symmetric_subspace_dimension(dim: int, copies: int) -> int:
    """Dimension ``C(d + k - 1, k)`` of the symmetric subspace of ``k`` ``d``-dim systems."""
    if dim <= 0 or copies <= 0:
        raise DimensionMismatchError("dimension and copy count must be positive")
    return comb(dim + copies - 1, copies)


def symmetric_subspace_projector(dim: int, copies: int) -> np.ndarray:
    """The projector ``Pi_sym = (1/k!) sum_{pi in S_k} U_pi``."""
    if dim <= 0 or copies <= 0:
        raise DimensionMismatchError("dimension and copy count must be positive")
    total = dim**copies
    projector = np.zeros((total, total), dtype=np.complex128)
    for perm in iter_permutations(range(copies)):
        projector += permutation_unitary(perm, dim)
    projector /= factorial(copies)
    return projector


def antisymmetric_projector(dim: int, copies: int) -> np.ndarray:
    """The projector onto the fully antisymmetric subspace (sign-weighted average)."""
    if dim <= 0 or copies <= 0:
        raise DimensionMismatchError("dimension and copy count must be positive")
    total = dim**copies
    projector = np.zeros((total, total), dtype=np.complex128)
    for perm in iter_permutations(range(copies)):
        sign = _permutation_sign(perm)
        projector += sign * permutation_unitary(perm, dim)
    projector /= factorial(copies)
    return projector


def orthogonal_complement_projector(dim: int, copies: int) -> np.ndarray:
    """``I - Pi_sym``: projector onto the subspace ``H_N`` orthogonal to ``H_S^k``."""
    total = dim**copies
    return np.eye(total, dtype=np.complex128) - symmetric_subspace_projector(dim, copies)


def symmetric_weight(state: np.ndarray, dim: int, copies: int) -> float:
    """Weight ``|alpha|^2`` of a pure state inside the symmetric subspace.

    This is exactly the acceptance probability of the permutation test on the
    state (Lemma 15).
    """
    vec = np.asarray(state, dtype=np.complex128).reshape(-1)
    if vec.size != dim**copies:
        raise DimensionMismatchError(
            f"state dimension {vec.size} does not match {dim}^{copies}"
        )
    projector = symmetric_subspace_projector(dim, copies)
    return float(np.real(np.vdot(vec, projector @ vec)))


def _permutation_sign(perm) -> int:
    """Sign of a permutation given in one-line notation."""
    perm = list(perm)
    sign = 1
    visited = [False] * len(perm)
    for start in range(len(perm)):
        if visited[start]:
            continue
        cycle_length = 0
        current = start
        while not visited[current]:
            visited[current] = True
            current = perm[current]
            cycle_length += 1
        if cycle_length % 2 == 0:
            sign = -sign
    return sign
