"""Quantum simulation substrate.

This package is a small, self-contained exact simulator of finite-dimensional
quantum systems built on numpy.  It provides everything the dQMA protocols of
the paper need:

* pure states / density matrices and their algebra (:mod:`repro.quantum.states`),
* standard gates and permutation unitaries (:mod:`repro.quantum.gates`),
* distance measures: trace distance and fidelity (:mod:`repro.quantum.distance`),
* named multi-register systems with partial traces (:mod:`repro.quantum.system`),
* projective and POVM measurements (:mod:`repro.quantum.measurement`),
* the symmetric subspace and permutation operators (:mod:`repro.quantum.symmetric`),
* the SWAP test and the permutation test (:mod:`repro.quantum.swap_test`,
  :mod:`repro.quantum.permutation_test`),
* quantum fingerprints of classical strings (:mod:`repro.quantum.fingerprint`),
* composable Kraus noise channels and per-network noise models
  (:mod:`repro.quantum.channels`).
"""

from repro.quantum.channels import (
    CHANNEL_FAMILIES,
    KrausChannel,
    NoiseModel,
    amplitude_damping_channel,
    apply_channels,
    bit_flip_channel,
    channel_family,
    dephasing_channel,
    depolarizing_channel,
    flip_probability,
    identity_channel,
    phase_flip_channel,
)

from repro.quantum.distance import (
    fidelity,
    fuchs_van_de_graaf_bounds,
    purity,
    trace_distance,
    trace_norm,
)
from repro.quantum.fingerprint import (
    ExactCodeFingerprint,
    FingerprintScheme,
    HadamardCodeFingerprint,
    SimulatedFingerprint,
    fingerprint_register_qubits,
)
from repro.quantum.gates import (
    controlled_swap,
    hadamard,
    identity,
    pauli_x,
    pauli_z,
    permutation_unitary,
    swap_unitary,
)
from repro.quantum.measurement import POVM, born_probability, projective_measurement
from repro.quantum.permutation_test import (
    permutation_test_accept_probability,
    permutation_test_projector,
)
from repro.quantum.random_states import haar_random_state, random_density_matrix
from repro.quantum.states import (
    basis_state,
    bra,
    density_matrix,
    is_density_matrix,
    is_normalized,
    ket,
    normalize,
    outer,
    partial_trace,
    tensor,
)
from repro.quantum.swap_test import (
    swap_test_accept_probability,
    swap_test_accept_probability_pure,
    swap_test_projector,
)
from repro.quantum.symmetric import (
    antisymmetric_projector,
    symmetric_subspace_dimension,
    symmetric_subspace_projector,
)
from repro.quantum.system import QuantumSystem, Register

__all__ = [
    "CHANNEL_FAMILIES",
    "KrausChannel",
    "NoiseModel",
    "amplitude_damping_channel",
    "apply_channels",
    "bit_flip_channel",
    "channel_family",
    "dephasing_channel",
    "depolarizing_channel",
    "flip_probability",
    "identity_channel",
    "phase_flip_channel",
    "fidelity",
    "fuchs_van_de_graaf_bounds",
    "purity",
    "trace_distance",
    "trace_norm",
    "ExactCodeFingerprint",
    "FingerprintScheme",
    "HadamardCodeFingerprint",
    "SimulatedFingerprint",
    "fingerprint_register_qubits",
    "controlled_swap",
    "hadamard",
    "identity",
    "pauli_x",
    "pauli_z",
    "permutation_unitary",
    "swap_unitary",
    "POVM",
    "born_probability",
    "projective_measurement",
    "permutation_test_accept_probability",
    "permutation_test_projector",
    "haar_random_state",
    "random_density_matrix",
    "basis_state",
    "bra",
    "density_matrix",
    "is_density_matrix",
    "is_normalized",
    "ket",
    "normalize",
    "outer",
    "partial_trace",
    "tensor",
    "swap_test_accept_probability",
    "swap_test_accept_probability_pure",
    "swap_test_projector",
    "antisymmetric_projector",
    "symmetric_subspace_dimension",
    "symmetric_subspace_projector",
    "QuantumSystem",
    "Register",
]
