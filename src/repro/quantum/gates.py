"""Standard gates and permutation unitaries.

These are the only unitaries the protocols of the paper require: Hadamard (for
the SWAP test), the SWAP operator on two equal-dimensional systems, the
controlled-SWAP used in Algorithm 1, and the permutation unitaries
``U_pi |i_1> ... |i_k> = |i_{pi^{-1}(1)}> ... |i_{pi^{-1}(k)}>`` used by the
permutation test (Algorithm 2).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations as iter_permutations
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError

SQRT_HALF = 1.0 / np.sqrt(2.0)


def identity(dim: int) -> np.ndarray:
    """The identity operator on a ``dim``-dimensional space."""
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    return np.eye(dim, dtype=np.complex128)


def hadamard() -> np.ndarray:
    """The single-qubit Hadamard gate."""
    return SQRT_HALF * np.array([[1, 1], [1, -1]], dtype=np.complex128)


def pauli_x() -> np.ndarray:
    """The single-qubit Pauli X gate."""
    return np.array([[0, 1], [1, 0]], dtype=np.complex128)


def pauli_z() -> np.ndarray:
    """The single-qubit Pauli Z gate."""
    return np.array([[1, 0], [0, -1]], dtype=np.complex128)


@lru_cache(maxsize=64)
def _swap_unitary_cached(dim: int) -> np.ndarray:
    swap = np.zeros((dim * dim, dim * dim), dtype=np.complex128)
    rows = (np.arange(dim)[None, :] * dim + np.arange(dim)[:, None]).reshape(-1)
    swap[rows, np.arange(dim * dim)] = 1.0
    swap.setflags(write=False)
    return swap


def swap_unitary(dim: int) -> np.ndarray:
    """The SWAP operator on two subsystems each of dimension ``dim``.

    The returned array is cached and marked read-only; copy before mutating.
    """
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    return _swap_unitary_cached(int(dim))


def controlled_swap(dim: int) -> np.ndarray:
    """The controlled-SWAP gate: control qubit first, then two ``dim``-dim targets."""
    swap = swap_unitary(dim)
    eye = np.eye(dim * dim, dtype=np.complex128)
    zero = np.zeros((2, 2), dtype=np.complex128)
    zero[0, 0] = 1.0
    one = np.zeros((2, 2), dtype=np.complex128)
    one[1, 1] = 1.0
    return np.kron(zero, eye) + np.kron(one, swap)


def permutation_unitary(permutation: Sequence[int], dim: int) -> np.ndarray:
    """Unitary permuting ``k`` subsystems of dimension ``dim``.

    ``permutation`` is given in one-line notation: position ``p`` of the
    output receives the subsystem that was at position ``permutation[p]`` of
    the input.  Equivalently this implements
    ``U |i_0> ... |i_{k-1}> = |i_{perm[0]}> ... |i_{perm[k-1]}>``.
    """
    perm = tuple(int(p) for p in permutation)
    k = len(perm)
    if sorted(perm) != list(range(k)):
        raise DimensionMismatchError(f"{perm} is not a permutation of 0..{k - 1}")
    total = dim**k
    unitary = np.zeros((total, total), dtype=np.complex128)
    for index in range(total):
        digits = _digits(index, dim, k)
        permuted = tuple(digits[perm[p]] for p in range(k))
        target = _from_digits(permuted, dim)
        unitary[target, index] = 1.0
    return unitary


def all_permutation_unitaries(k: int, dim: int) -> Tuple[Tuple[Tuple[int, ...], np.ndarray], ...]:
    """All ``k!`` permutation unitaries on ``k`` subsystems of dimension ``dim``."""
    result = []
    for perm in iter_permutations(range(k)):
        result.append((perm, permutation_unitary(perm, dim)))
    return tuple(result)


def _digits(index: int, dim: int, k: int) -> Tuple[int, ...]:
    """Base-``dim`` digits (most significant first) of ``index`` with ``k`` digits."""
    digits = []
    for position in range(k - 1, -1, -1):
        digits.append((index // dim**position) % dim)
    return tuple(digits)


def _from_digits(digits: Sequence[int], dim: int) -> int:
    """Inverse of :func:`_digits`."""
    value = 0
    for digit in digits:
        value = value * dim + int(digit)
    return value


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Check ``U U^dagger = I``."""
    mat = np.asarray(matrix, dtype=np.complex128)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    return bool(np.allclose(mat @ mat.conj().T, np.eye(mat.shape[0]), atol=atol))
