"""Named multi-register pure-state quantum systems.

:class:`QuantumSystem` is the work-horse of the *global* (entangled-proof)
simulations: it stores a state vector over an ordered collection of named
registers and supports applying unitaries/operators to arbitrary subsets of
registers, projecting onto measurement outcomes, sampling computational-basis
measurements and computing reduced density matrices.

The product-proof simulators used for larger instances avoid this class and
work with local states only (see :mod:`repro.protocols`); this class is used
whenever exact, fully-entangled simulation of a small instance is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError, NormalizationError, RegisterError
from repro.quantum.states import basis_state
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Register:
    """A named quantum register of a fixed dimension."""

    name: str
    dim: int

    def __post_init__(self) -> None:
        if not self.name:
            raise RegisterError("register name must be non-empty")
        if self.dim <= 0:
            raise RegisterError(f"register {self.name!r} must have positive dimension")

    @property
    def num_qubits(self) -> float:
        """Number of qubits needed to hold the register (``log2`` of the dimension)."""
        return float(np.log2(self.dim))


class QuantumSystem:
    """An exact state-vector simulator over named registers."""

    def __init__(self, registers: Sequence[Register], state: Optional[np.ndarray] = None):
        if not registers:
            raise RegisterError("a quantum system needs at least one register")
        names = [reg.name for reg in registers]
        if len(set(names)) != len(names):
            raise RegisterError(f"duplicate register names: {names}")
        self._registers: Tuple[Register, ...] = tuple(registers)
        self._index: Dict[str, int] = {reg.name: i for i, reg in enumerate(self._registers)}
        self._dims: Tuple[int, ...] = tuple(reg.dim for reg in self._registers)
        total = int(np.prod(self._dims))
        if state is None:
            vec = basis_state(total, 0)
        else:
            vec = np.asarray(state, dtype=np.complex128).reshape(-1)
            if vec.size != total:
                raise DimensionMismatchError(
                    f"state has dimension {vec.size}, registers require {total}"
                )
        self._state = vec.astype(np.complex128).copy()

    # ------------------------------------------------------------------ API

    @property
    def registers(self) -> Tuple[Register, ...]:
        """The registers of the system, in tensor order."""
        return self._registers

    @property
    def register_names(self) -> Tuple[str, ...]:
        """Names of the registers, in tensor order."""
        return tuple(reg.name for reg in self._registers)

    @property
    def dims(self) -> Tuple[int, ...]:
        """Dimensions of the registers, in tensor order."""
        return self._dims

    @property
    def total_dim(self) -> int:
        """Dimension of the full Hilbert space."""
        return int(np.prod(self._dims))

    @property
    def state_vector(self) -> np.ndarray:
        """A copy of the (possibly unnormalized) global state vector."""
        return self._state.copy()

    def copy(self) -> "QuantumSystem":
        """An independent copy of the system."""
        return QuantumSystem(self._registers, self._state.copy())

    @classmethod
    def from_product(
        cls, assignments: Sequence[Tuple[Register, np.ndarray]]
    ) -> "QuantumSystem":
        """Build a system whose state is the tensor product of per-register kets."""
        registers = [reg for reg, _ in assignments]
        state = np.array([1.0 + 0.0j])
        for reg, vec in assignments:
            vec = np.asarray(vec, dtype=np.complex128).reshape(-1)
            if vec.size != reg.dim:
                raise DimensionMismatchError(
                    f"state for register {reg.name!r} has dimension {vec.size}, "
                    f"expected {reg.dim}"
                )
            state = np.kron(state, vec)
        return cls(registers, state)

    # --------------------------------------------------------- state algebra

    def norm_squared(self) -> float:
        """Squared norm of the state (probability weight of the current branch)."""
        return float(np.real(np.vdot(self._state, self._state)))

    def renormalize(self) -> "QuantumSystem":
        """Normalize the state in place (raises on the zero vector); returns self."""
        norm = np.linalg.norm(self._state)
        if norm < 1e-15:
            raise NormalizationError("cannot renormalize the zero vector")
        self._state = self._state / norm
        return self

    def apply_operator(self, operator: np.ndarray, register_names: Sequence[str]) -> "QuantumSystem":
        """Apply a (not necessarily unitary) operator to the named registers in place."""
        axes = self._axes(register_names)
        target_dims = [self._dims[a] for a in axes]
        block = int(np.prod(target_dims))
        op = np.asarray(operator, dtype=np.complex128)
        if op.shape != (block, block):
            raise DimensionMismatchError(
                f"operator shape {op.shape} does not match registers "
                f"{tuple(register_names)} of total dimension {block}"
            )
        tensor_state = self._state.reshape(self._dims)
        op_tensor = op.reshape(target_dims + target_dims)
        # Contract the operator's input axes with the targeted state axes.
        moved = np.tensordot(op_tensor, tensor_state, axes=(list(range(len(axes), 2 * len(axes))), axes))
        # tensordot puts the operator output axes first; move them back into place.
        moved = np.moveaxis(moved, list(range(len(axes))), axes)
        self._state = moved.reshape(-1)
        return self

    def apply_unitary(self, unitary: np.ndarray, register_names: Sequence[str]) -> "QuantumSystem":
        """Alias of :meth:`apply_operator` kept for readability at call sites."""
        return self.apply_operator(unitary, register_names)

    def expectation(self, operator: np.ndarray, register_names: Sequence[str]) -> float:
        """``<psi| O |psi>`` of an operator acting on the named registers."""
        branch = self.copy().apply_operator(operator, register_names)
        return float(np.real(np.vdot(self._state, branch._state)))

    def project(
        self, projector: np.ndarray, register_names: Sequence[str], renormalize: bool = False
    ) -> float:
        """Project onto a measurement outcome; returns the branch probability.

        The state is replaced by the (unnormalized, unless ``renormalize``)
        projected branch.  The returned probability is relative to the norm of
        the state *before* the projection, so chaining projections of commuting
        outcomes accumulates the joint outcome probability in
        :meth:`norm_squared`.
        """
        before = self.norm_squared()
        if before <= 1e-18:
            return 0.0
        self.apply_operator(projector, register_names)
        after = self.norm_squared()
        probability = after / before
        if renormalize and after > 1e-18:
            self.renormalize()
        return float(min(max(probability, 0.0), 1.0))

    def measure_computational(
        self, register_names: Sequence[str], rng: RngLike = None
    ) -> Tuple[int, float]:
        """Measure the named registers in the computational basis.

        Returns ``(outcome, probability)`` where ``outcome`` indexes the joint
        computational basis of the measured registers, and collapses the state.
        """
        generator = ensure_rng(rng)
        axes = self._axes(register_names)
        target_dims = [self._dims[a] for a in axes]
        block = int(np.prod(target_dims))
        tensor_state = self._state.reshape(self._dims)
        moved = np.moveaxis(tensor_state, axes, range(len(axes)))
        flat = moved.reshape(block, -1)
        weights = np.sum(np.abs(flat) ** 2, axis=1)
        total = weights.sum()
        if total <= 1e-18:
            raise NormalizationError("cannot measure the zero vector")
        probabilities = weights / total
        outcome = int(generator.choice(block, p=probabilities))
        collapsed = np.zeros_like(flat)
        collapsed[outcome] = flat[outcome]
        collapsed_tensor = collapsed.reshape([target_dims[i] for i in range(len(axes))] + [
            d for i, d in enumerate(moved.shape) if i >= len(axes)
        ])
        restored = np.moveaxis(collapsed_tensor, range(len(axes)), axes)
        self._state = restored.reshape(-1)
        self.renormalize()
        return outcome, float(probabilities[outcome])

    def reduced_density_matrix(self, register_names: Sequence[str]) -> np.ndarray:
        """Reduced density matrix of the named registers (normalized)."""
        axes = self._axes(register_names)
        target_dims = [self._dims[a] for a in axes]
        block = int(np.prod(target_dims))
        tensor_state = self._state.reshape(self._dims)
        moved = np.moveaxis(tensor_state, axes, range(len(axes)))
        flat = moved.reshape(block, -1)
        rho = flat @ flat.conj().T
        trace = np.trace(rho).real
        if trace <= 1e-18:
            raise NormalizationError("cannot reduce the zero vector")
        return rho / trace

    def overlap(self, other: "QuantumSystem") -> complex:
        """``<other|self>`` for two systems over identical register layouts."""
        if self._dims != other._dims:
            raise DimensionMismatchError("systems have different register layouts")
        return complex(np.vdot(other._state, self._state))

    # ------------------------------------------------------------ internals

    def _axes(self, register_names: Sequence[str]) -> List[int]:
        if isinstance(register_names, str):
            raise RegisterError(
                "register_names must be a sequence of names, not a single string"
            )
        axes = []
        for name in register_names:
            if name not in self._index:
                raise RegisterError(f"unknown register {name!r}")
            axes.append(self._index[name])
        if len(set(axes)) != len(axes):
            raise RegisterError(f"duplicate registers in {tuple(register_names)}")
        return axes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"{r.name}:{r.dim}" for r in self._registers)
        return f"QuantumSystem({regs}, norm^2={self.norm_squared():.4f})"
