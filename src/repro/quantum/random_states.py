"""Haar-random pure states and random density matrices.

Used by the adversarial soundness search (random restarts of the seesaw
optimisation) and by the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.utils.rng import RngLike, ensure_rng


def haar_random_state(dim: int, rng: RngLike = None) -> np.ndarray:
    """A Haar-random pure state of the given dimension."""
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    generator = ensure_rng(rng)
    real = generator.normal(size=dim)
    imag = generator.normal(size=dim)
    vec = real + 1j * imag
    return vec / np.linalg.norm(vec)


def haar_random_unitary(dim: int, rng: RngLike = None) -> np.ndarray:
    """A Haar-random unitary via QR decomposition of a Ginibre matrix."""
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    generator = ensure_rng(rng)
    ginibre = generator.normal(size=(dim, dim)) + 1j * generator.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases


def random_density_matrix(dim: int, rank: int | None = None, rng: RngLike = None) -> np.ndarray:
    """A random density matrix of the given dimension and rank (default: full rank)."""
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    generator = ensure_rng(rng)
    if rank is None:
        rank = dim
    if rank <= 0 or rank > dim:
        raise DimensionMismatchError(f"rank must be in [1, {dim}], got {rank}")
    ginibre = generator.normal(size=(dim, rank)) + 1j * generator.normal(size=(dim, rank))
    rho = ginibre @ ginibre.conj().T
    return rho / np.trace(rho).real


def random_product_state(dims, rng: RngLike = None) -> np.ndarray:
    """Tensor product of independent Haar-random states on the given dimensions."""
    generator = ensure_rng(rng)
    state = np.array([1.0 + 0.0j])
    for dim in dims:
        state = np.kron(state, haar_random_state(int(dim), generator))
    return state
