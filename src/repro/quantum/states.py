"""Pure states, density matrices and their basic algebra.

Conventions
-----------
* Pure states are one-dimensional complex numpy arrays (kets).
* Density matrices are two-dimensional complex numpy arrays.
* Composite systems are ordered left-to-right; ``tensor(a, b)`` puts ``a`` on
  the most significant axis, matching ``numpy.kron``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.exceptions import DimensionMismatchError, NormalizationError

ATOL = 1e-9

StateLike = Union[np.ndarray, Sequence[complex]]


def ket(amplitudes: StateLike) -> np.ndarray:
    """Return a complex column-free ket (1-D array) from the given amplitudes."""
    vec = np.asarray(amplitudes, dtype=np.complex128).reshape(-1)
    if vec.ndim != 1 or vec.size == 0:
        raise DimensionMismatchError("a ket must be a non-empty 1-D array")
    return vec


def bra(amplitudes: StateLike) -> np.ndarray:
    """Return the conjugate transpose (as a 1-D array) of the given ket."""
    return np.conj(ket(amplitudes))


def basis_state(dim: int, index: int) -> np.ndarray:
    """The computational basis ket ``|index>`` in a ``dim``-dimensional space."""
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    if index < 0 or index >= dim:
        raise DimensionMismatchError(f"basis index {index} out of range for dim {dim}")
    vec = np.zeros(dim, dtype=np.complex128)
    vec[index] = 1.0
    return vec


def normalize(state: StateLike) -> np.ndarray:
    """Normalize a ket to unit Euclidean norm."""
    vec = ket(state)
    norm = np.linalg.norm(vec)
    if norm < ATOL:
        raise NormalizationError("cannot normalize the zero vector")
    return vec / norm


def is_normalized(state: StateLike, atol: float = 1e-8) -> bool:
    """True when the ket has unit norm (within ``atol``)."""
    vec = ket(state)
    return bool(abs(np.linalg.norm(vec) - 1.0) <= atol)


def outer(state: StateLike, other: StateLike | None = None) -> np.ndarray:
    """The outer product ``|state><other|`` (``other`` defaults to ``state``)."""
    left = ket(state)
    right = ket(other) if other is not None else left
    return np.outer(left, np.conj(right))


def density_matrix(state: StateLike) -> np.ndarray:
    """Density matrix of a pure state: ``|psi><psi|``.

    If the input is already a square matrix it is validated and returned.
    """
    arr = np.asarray(state, dtype=np.complex128)
    if arr.ndim == 2:
        if arr.shape[0] != arr.shape[1]:
            raise DimensionMismatchError("density matrix must be square")
        return arr
    return outer(arr)


def is_density_matrix(matrix: np.ndarray, atol: float = 1e-7) -> bool:
    """Check Hermiticity, positivity and unit trace."""
    mat = np.asarray(matrix, dtype=np.complex128)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return False
    if not np.allclose(mat, mat.conj().T, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh((mat + mat.conj().T) / 2)
    if eigenvalues.min() < -atol:
        return False
    return bool(abs(np.trace(mat).real - 1.0) <= atol)


def tensor(*factors: StateLike) -> np.ndarray:
    """Kronecker product of kets or matrices (mixing is not allowed)."""
    if not factors:
        raise DimensionMismatchError("tensor() needs at least one factor")
    arrays = [np.asarray(f, dtype=np.complex128) for f in factors]
    ndim = arrays[0].ndim
    if any(a.ndim != ndim for a in arrays):
        raise DimensionMismatchError("cannot mix kets and matrices in tensor()")
    result = arrays[0]
    for arr in arrays[1:]:
        result = np.kron(result, arr)
    return result


def partial_trace(
    matrix: np.ndarray, dims: Sequence[int], keep: Iterable[int]
) -> np.ndarray:
    """Partial trace of a density matrix over the subsystems not in ``keep``.

    Parameters
    ----------
    matrix:
        Density matrix on a composite system whose subsystem dimensions are
        ``dims`` (ordered left-to-right as in :func:`tensor`).
    dims:
        Dimension of each subsystem.
    keep:
        Indices (into ``dims``) of the subsystems to keep.  The output is
        ordered exactly as listed, so ``keep=[1, 0]`` returns the reduced
        state with the two kept subsystems swapped.  Duplicates are rejected.
    """
    dims = list(int(d) for d in dims)
    keep = [int(k) for k in keep]
    if len(set(keep)) != len(keep):
        raise DimensionMismatchError(f"keep indices {keep} contain duplicates")
    total = int(np.prod(dims))
    mat = np.asarray(matrix, dtype=np.complex128)
    if mat.shape != (total, total):
        raise DimensionMismatchError(
            f"matrix shape {mat.shape} does not match subsystem dims {dims}"
        )
    if any(k < 0 or k >= len(dims) for k in keep):
        raise DimensionMismatchError(f"keep indices {keep} out of range")
    num = len(dims)
    reshaped = mat.reshape(dims + dims)
    trace_out = [i for i in range(num) if i not in keep]
    # Trace out the highest-index subsystem first so earlier axis labels stay valid.
    for subsystem in sorted(trace_out, reverse=True):
        reshaped = np.trace(reshaped, axis1=subsystem, axis2=subsystem + reshaped.ndim // 2)
    if not keep:
        return reshaped.reshape(1, 1)
    # After tracing, the remaining axes follow the subsystems' ascending order;
    # permute them to honor the order the caller listed in ``keep``.
    ascending = sorted(keep)
    order = [ascending.index(k) for k in keep]
    half = reshaped.ndim // 2
    reshaped = reshaped.transpose(order + [half + position for position in order])
    keep_dim = int(np.prod([dims[k] for k in keep]))
    return reshaped.reshape(keep_dim, keep_dim)


def expectation(operator: np.ndarray, state: StateLike) -> float:
    """Real part of ``<psi|O|psi>`` (ket input) or ``tr(O rho)`` (matrix input)."""
    op = np.asarray(operator, dtype=np.complex128)
    arr = np.asarray(state, dtype=np.complex128)
    if arr.ndim == 1:
        value = np.vdot(arr, op @ arr)
    else:
        value = np.trace(op @ arr)
    return float(np.real(value))
