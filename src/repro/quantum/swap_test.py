"""The SWAP test (Algorithm 1 of the paper).

The SWAP test on a bipartite input state accepts with probability equal to the
weight of the state in the symmetric subspace of the two registers:
``P[accept] = tr( (I + SWAP)/2 * rho )``.  For pure product inputs
``|psi_1> (x) |psi_2>`` this reduces to the textbook value
``1/2 + |<psi_1|psi_2>|^2 / 2``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.quantum.gates import swap_unitary
from repro.quantum.states import density_matrix


@lru_cache(maxsize=64)
def _swap_test_projector_cached(dim: int) -> np.ndarray:
    swap = swap_unitary(dim)
    eye = np.eye(dim * dim, dtype=np.complex128)
    projector = (eye + swap) / 2.0
    projector.setflags(write=False)
    return projector


def swap_test_projector(dim: int) -> np.ndarray:
    """Accept projector ``(I + SWAP)/2`` on two ``dim``-dimensional registers.

    The returned array is cached and marked read-only; copy before mutating.
    """
    if dim <= 0:
        raise DimensionMismatchError("dimension must be positive")
    return _swap_test_projector_cached(int(dim))


def swap_test_accept_probability(rho, dim: int | None = None) -> float:
    """Acceptance probability of the SWAP test on a (possibly mixed) bipartite state.

    ``rho`` is a ket or density matrix on two equal-dimensional registers; if
    ``dim`` is not given it is inferred as the square root of the total
    dimension.
    """
    rho_m = density_matrix(rho)
    total = rho_m.shape[0]
    if dim is None:
        dim = int(round(np.sqrt(total)))
    if dim * dim != total:
        raise DimensionMismatchError(
            f"total dimension {total} is not a square of the register dimension {dim}"
        )
    projector = swap_test_projector(dim)
    return float(np.real(np.trace(projector @ rho_m)))


def swap_test_accept_probability_pure(psi: np.ndarray, phi: np.ndarray) -> float:
    """``1/2 + |<psi|phi>|^2 / 2`` for a product input of two pure states."""
    psi = np.asarray(psi, dtype=np.complex128).reshape(-1)
    phi = np.asarray(phi, dtype=np.complex128).reshape(-1)
    if psi.shape != phi.shape:
        raise DimensionMismatchError("SWAP test requires equal-dimensional registers")
    overlap = abs(np.vdot(psi, phi)) ** 2
    return 0.5 + 0.5 * float(overlap)


def swap_test_post_measurement_state(rho, accept: bool, dim: int | None = None) -> np.ndarray:
    """Normalized post-measurement state of the SWAP test given the outcome."""
    rho_m = density_matrix(rho)
    total = rho_m.shape[0]
    if dim is None:
        dim = int(round(np.sqrt(total)))
    projector = swap_test_projector(dim)
    if not accept:
        projector = np.eye(total, dtype=np.complex128) - projector
    unnormalized = projector @ rho_m @ projector
    probability = float(np.real(np.trace(unnormalized)))
    if probability <= 1e-15:
        raise DimensionMismatchError("conditioning on a zero-probability outcome")
    return unnormalized / probability
