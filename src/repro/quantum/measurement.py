"""Projective and POVM measurements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError, NormalizationError
from repro.quantum.states import density_matrix
from repro.utils.rng import RngLike, ensure_rng


def born_probability(operator: np.ndarray, state) -> float:
    """``tr(M rho)`` clipped to [0, 1] for a POVM element ``M``."""
    rho = density_matrix(state)
    op = np.asarray(operator, dtype=np.complex128)
    if op.shape != rho.shape:
        raise DimensionMismatchError(
            f"operator shape {op.shape} does not match state shape {rho.shape}"
        )
    value = float(np.real(np.trace(op @ rho)))
    return min(max(value, 0.0), 1.0)


@dataclass(frozen=True)
class POVM:
    """A positive-operator-valued measure with hashable outcome labels."""

    elements: Tuple[Tuple[Hashable, np.ndarray], ...]

    @classmethod
    def from_dict(cls, elements: Dict[Hashable, np.ndarray]) -> "POVM":
        """Build a POVM from a mapping of outcome label to POVM element."""
        return cls(tuple((label, np.asarray(op, dtype=np.complex128)) for label, op in elements.items()))

    @classmethod
    def two_outcome(cls, accept_operator: np.ndarray) -> "POVM":
        """The accept/reject POVM ``{M, I - M}`` with labels 1 and 0."""
        accept = np.asarray(accept_operator, dtype=np.complex128)
        reject = np.eye(accept.shape[0], dtype=np.complex128) - accept
        return cls(((1, accept), (0, reject)))

    @property
    def dim(self) -> int:
        """Dimension of the space the POVM acts on."""
        return self.elements[0][1].shape[0]

    def validate(self, atol: float = 1e-7) -> None:
        """Check positivity of every element and completeness (sum to identity)."""
        total = np.zeros((self.dim, self.dim), dtype=np.complex128)
        for label, op in self.elements:
            if op.shape != (self.dim, self.dim):
                raise DimensionMismatchError(f"POVM element {label!r} has wrong shape")
            eigenvalues = np.linalg.eigvalsh((op + op.conj().T) / 2)
            if eigenvalues.min() < -atol:
                raise NormalizationError(f"POVM element {label!r} is not positive")
            total += op
        if not np.allclose(total, np.eye(self.dim), atol=atol):
            raise NormalizationError("POVM elements do not sum to the identity")

    def outcome_distribution(self, state) -> Dict[Hashable, float]:
        """Probability of each outcome on the given state."""
        return {label: born_probability(op, state) for label, op in self.elements}

    def accept_probability(self, state, accept_label: Hashable = 1) -> float:
        """Probability of the outcome labelled ``accept_label``."""
        for label, op in self.elements:
            if label == accept_label:
                return born_probability(op, state)
        raise DimensionMismatchError(f"POVM has no outcome labelled {accept_label!r}")

    def sample(self, state, rng: RngLike = None) -> Hashable:
        """Sample an outcome according to the Born rule."""
        generator = ensure_rng(rng)
        labels = [label for label, _ in self.elements]
        probabilities = np.array([born_probability(op, state) for _, op in self.elements])
        total = probabilities.sum()
        if total <= 0:
            raise NormalizationError("POVM outcome probabilities sum to zero")
        probabilities = probabilities / total
        index = generator.choice(len(labels), p=probabilities)
        return labels[index]


def projective_measurement(
    projectors: Sequence[np.ndarray], state, rng: RngLike = None
) -> Tuple[int, float, np.ndarray]:
    """Perform a projective measurement on a pure state.

    Returns ``(outcome index, probability, normalized post-measurement ket)``.
    """
    generator = ensure_rng(rng)
    vec = np.asarray(state, dtype=np.complex128).reshape(-1)
    probabilities: List[float] = []
    branches: List[np.ndarray] = []
    for projector in projectors:
        proj = np.asarray(projector, dtype=np.complex128)
        if proj.shape != (vec.size, vec.size):
            raise DimensionMismatchError("projector shape does not match the state")
        branch = proj @ vec
        probabilities.append(float(np.real(np.vdot(branch, branch))))
        branches.append(branch)
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-6:
        raise NormalizationError(
            f"projective measurement probabilities sum to {total}, expected 1"
        )
    normalized = np.array(probabilities) / total
    outcome = int(generator.choice(len(projectors), p=normalized))
    branch = branches[outcome]
    norm = np.linalg.norm(branch)
    post = branch / norm if norm > 0 else branch
    return outcome, probabilities[outcome], post


def computational_basis_povm(dim: int) -> POVM:
    """The computational-basis measurement as a POVM with integer labels."""
    elements = {}
    for index in range(dim):
        op = np.zeros((dim, dim), dtype=np.complex128)
        op[index, index] = 1.0
        elements[index] = op
    return POVM.from_dict(elements)
