"""Composable Kraus noise channels and per-network noise models.

Everything the engine evaluates in the absence of noise assumes perfect
state preparation, transmission and measurement.  This module supplies the
noise vocabulary of the robustness experiments:

:class:`KrausChannel`
    A completely positive trace-preserving (CPTP) map given by its Kraus
    operators ``{K_k}`` with the completeness relation
    ``sum_k K_k^dagger K_k = I`` asserted at construction.  Channels act on
    density matrices (``apply``), expose their ``d^2 x d^2`` superoperator
    for vectorized batch application, and compose with ``then``.

Channel constructors
    :func:`identity_channel`, :func:`depolarizing_channel`,
    :func:`dephasing_channel`, :func:`amplitude_damping_channel`,
    :func:`bit_flip_channel`, :func:`phase_flip_channel` — each generalized
    from the qubit textbook form to arbitrary register dimension ``d``
    (shift/clock operators replace the Pauli ``X``/``Z``).

:class:`NoiseModel`
    Assigns channels per-link and per-node of a protocol's network, plus a
    classical measurement readout-error probability.  Protocols translate a
    noise model into the engine's per-job channel annotations
    (:class:`repro.engine.jobs.ChainNoise` / :class:`~repro.engine.jobs.
    TreeNoise`); an empty model keeps the fast pure-state evaluation path.

Measurement readout error is not a Kraus channel: it is the classical binary
symmetric channel on a test's accept/reject flag, applied with
:func:`flip_probability`.

Doctest examples (run by ``pytest --doctest-modules`` in CI):

>>> import numpy as np
>>> channel = depolarizing_channel(0.2, dim=2)
>>> rho = np.array([[1.0, 0.0], [0.0, 0.0]])       # |0><0|
>>> np.round(channel.apply(rho), 10)                # 0.8 rho + 0.2 I/2
array([[0.9+0.j, 0. +0.j],
       [0. +0.j, 0.1+0.j]])
>>> round(float(np.trace(channel.apply(rho)).real), 12)   # trace preserving
1.0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ChannelError, DimensionMismatchError

#: Tolerance of the Kraus completeness assertion ``sum_k K_k^dagger K_k = I``.
COMPLETENESS_ATOL = 1e-10

#: Any node/edge label a :class:`NoiseModel` may key channels on.
Label = Union[int, str]


@dataclass(frozen=True, eq=False)
class KrausChannel:
    """A CPTP map in Kraus form (compared by identity, like the engine jobs).

    ``params`` records the defining scalar parameters (noise strength,
    damping rate, ...) so that :attr:`key` is a readable value-level label
    for caches, experiment rows and benchmark metadata.

    >>> channel = dephasing_channel(0.5, dim=2)
    >>> channel.name, channel.params, channel.dim
    ('dephasing', (0.5,), 2)
    """

    name: str
    kraus: Tuple[np.ndarray, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.kraus:
            raise ChannelError("a Kraus channel needs at least one operator")
        operators = tuple(
            np.asarray(operator, dtype=np.complex128) for operator in self.kraus
        )
        dim = operators[0].shape[0] if operators[0].ndim == 2 else 0
        for operator in operators:
            if operator.ndim != 2 or operator.shape != (dim, dim) or dim == 0:
                raise DimensionMismatchError(
                    f"channel {self.name!r}: Kraus operators must be square "
                    "matrices of one shared dimension"
                )
        object.__setattr__(self, "kraus", operators)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        stacked = np.stack(operators)
        completeness = np.einsum("kji,kjl->il", stacked.conj(), stacked)
        if not np.allclose(completeness, np.eye(dim), atol=COMPLETENESS_ATOL):
            raise ChannelError(
                f"channel {self.name!r} is not trace preserving: "
                "sum_k K_k^dagger K_k != I"
            )

    @property
    def dim(self) -> int:
        """Dimension ``d`` of the registers the channel acts on."""
        return int(self.kraus[0].shape[0])

    @property
    def num_kraus(self) -> int:
        """Number of Kraus operators."""
        return len(self.kraus)

    @property
    def key(self) -> Tuple:
        """Value-level cache label: ``(name, params, dim)`` plus a Kraus digest.

        The digest of the actual operator content (cached) keeps two
        physically different channels that happen to share a name and
        parameters from ever colliding in a program cache.  Subclasses whose
        parameters provably determine the map (the closed-form constructors)
        override this with the analytic label alone.
        """
        digest = self.__dict__.get("_kraus_digest")
        if digest is None:
            import hashlib

            stacked = np.ascontiguousarray(np.stack(self.kraus))
            digest = hashlib.sha256(stacked.tobytes()).hexdigest()[:16]
            object.__setattr__(self, "_kraus_digest", digest)
        return (self.name, self.params, self.dim, digest)

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """The channel output ``sum_k K_k rho K_k^dagger`` on a density matrix.

        >>> channel = bit_flip_channel(1.0, dim=2)      # always flip
        >>> rho = np.array([[1.0, 0.0], [0.0, 0.0]])
        >>> np.allclose(channel.apply(rho), [[0, 0], [0, 1]])
        True
        """
        rho = np.asarray(rho, dtype=np.complex128)
        if rho.shape != (self.dim, self.dim):
            raise DimensionMismatchError(
                f"channel {self.name!r} acts on dimension {self.dim}, "
                f"got a state of shape {rho.shape}"
            )
        output = np.zeros_like(rho)
        for operator in self.kraus:
            output += operator @ rho @ operator.conj().T
        return output

    def apply_to_state(self, state: np.ndarray) -> np.ndarray:
        """The channel output on a pure state, as a density matrix."""
        vector = np.asarray(state, dtype=np.complex128).reshape(-1)
        return self.apply(np.outer(vector, vector.conj()))

    def apply_batch(self, densities: np.ndarray) -> np.ndarray:
        """The channel applied to a stack of densities, shape ``(..., d, d)``.

        The generic path routes every density through the superoperator in
        one matmul; channels with a closed-form action (depolarizing)
        override this to skip the ``d^2 x d^2`` matrix entirely.
        """
        densities = np.asarray(densities, dtype=np.complex128)
        dim = self.dim
        shape = densities.shape
        vectors = densities.reshape(-1, dim * dim) @ self.superoperator().T
        return vectors.reshape(shape)

    def superoperator(self) -> np.ndarray:
        """The ``d^2 x d^2`` matrix ``S`` with ``vec(C(rho)) = S vec(rho)``.

        Row-major ``vec``; cached on the channel, since batched evaluation
        applies the same channel to many registers at once.

        >>> channel = identity_channel(3)
        >>> np.allclose(channel.superoperator(), np.eye(9))
        True
        """
        cached = self.__dict__.get("_superoperator")
        if cached is None:
            # sum_k K_k (x) conj(K_k), computed in one einsum over the
            # stacked Kraus operators (repeated np.kron is far slower).
            stack = np.stack(self.kraus)
            dim = self.dim
            cached = np.einsum(
                "kac,kbd->abcd", stack, stack.conj(), optimize=True
            ).reshape(dim * dim, dim * dim)
            object.__setattr__(self, "_superoperator", cached)
        return cached

    @property
    def is_identity(self) -> bool:
        """True when the channel acts as the identity map (cached check)."""
        cached = self.__dict__.get("_is_identity")
        if cached is None:
            # rtol must be zero: np.allclose's default 1e-5 relative slack
            # would classify any channel weaker than ~1e-5 as the identity
            # and silently drop its noise from every evaluation path.
            cached = bool(
                np.allclose(
                    self.superoperator(), np.eye(self.dim**2), rtol=0.0, atol=1e-12
                )
            )
            object.__setattr__(self, "_is_identity", cached)
        return cached

    def then(self, other: "KrausChannel") -> "KrausChannel":
        """The composition *this channel first, then* ``other``.

        >>> composed = dephasing_channel(0.3, 2).then(dephasing_channel(0.4, 2))
        >>> composed.num_kraus
        9
        """
        if other.dim != self.dim:
            raise DimensionMismatchError(
                "composed channels must act on the same dimension"
            )
        operators = tuple(
            second @ first for second in other.kraus for first in self.kraus
        )
        return KrausChannel(
            name=f"{other.name}*{self.name}",
            kraus=operators,
            params=self.params + other.params,
        )


def identity_channel(dim: int) -> KrausChannel:
    """The noiseless channel on a ``dim``-dimensional register."""
    return KrausChannel("identity", (np.eye(dim),))


def _shift_operator(dim: int) -> np.ndarray:
    """The generalized Pauli ``X``: the cyclic shift ``|j> -> |j+1 mod d>``."""
    return np.eye(dim)[:, list(range(1, dim)) + [0]].astype(np.complex128)


def _clock_operator(dim: int) -> np.ndarray:
    """The generalized Pauli ``Z``: phases ``omega^j`` with ``omega = e^{2 pi i/d}``."""
    phases = np.exp(2j * np.pi * np.arange(dim) / dim)
    return np.diag(phases)


def _check_probability(p: float, name: str) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ChannelError(f"{name} strength must lie in [0, 1], got {p}")
    return p


def _weyl_operators(dim: int) -> np.ndarray:
    """The ``d^2 - 1`` non-trivial Weyl unitaries ``X^a Z^b``, stacked.

    ``X^a`` is a row-rolled identity and ``Z^b`` a diagonal phase, so each
    operator is built elementwise — no matrix powers or products.  Cached
    per dimension: a noise sweep constructs hundreds of depolarizing
    channels over the same register size.
    """
    cached = _WEYL_CACHE.get(dim)
    if cached is None:
        identity = np.eye(dim, dtype=np.complex128)
        phases = np.exp(2j * np.pi * np.arange(dim) / dim)
        stack = np.empty((dim * dim - 1, dim, dim), dtype=np.complex128)
        index = 0
        for a in range(dim):
            shifted = np.roll(identity, a, axis=0)
            for b in range(dim):
                if a == 0 and b == 0:
                    continue
                stack[index] = shifted * phases[None, :] ** b
                index += 1
        stack.setflags(write=False)
        _WEYL_CACHE[dim] = cached = stack
    return cached


_WEYL_CACHE: Dict[int, np.ndarray] = {}


@dataclass(frozen=True, eq=False)
class _ClosedFormDepolarizing(KrausChannel):
    """Depolarizing channel with closed-form action and lazy Kraus operators.

    The map ``rho -> (1 - p) rho + p I/d`` needs neither its ``d^2`` Weyl
    Kraus operators nor a materialized superoperator for the *batched*
    application path (:meth:`apply_batch`, :meth:`superoperator`), so
    large-dimension noise sweeps stay cheap: the Kraus stack is built (and
    its completeness asserted) only when read — by the scalar reference
    :meth:`~KrausChannel.apply`, which deliberately stays the definitional
    Kraus sum so the engine's dense backend cross-checks the closed forms.
    Completeness holds analytically regardless: the channel is a mixture of
    unitaries whose weights ``(1 - p (d^2-1)/d^2) + (d^2-1) p/d^2`` sum to 1.
    """

    dimension: int = 0

    def __post_init__(self) -> None:
        # ``kraus`` arrives as a placeholder; drop the attribute so the
        # first read falls through to ``__getattr__`` and builds lazily.
        object.__delattr__(self, "kraus")
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    def __getattr__(self, name: str):
        if name == "kraus":
            operators = _depolarizing_kraus(self.params[0], self.dimension)
            stacked = np.stack(operators)
            completeness = np.einsum("kji,kjl->il", stacked.conj(), stacked)
            if not np.allclose(
                completeness, np.eye(self.dimension), atol=COMPLETENESS_ATOL
            ):  # pragma: no cover - analytic construction
                raise ChannelError("depolarizing Kraus set lost completeness")
            object.__setattr__(self, "kraus", operators)
            return operators
        raise AttributeError(name)

    @property
    def dim(self) -> int:
        return self.dimension

    @property
    def is_identity(self) -> bool:
        return self.params[0] == 0.0

    @property
    def key(self) -> Tuple:
        # The strength and dimension fully determine the map, so the key
        # stays analytic and never materializes the Kraus stack.
        return (self.name, self.params, self.dimension)

    def _strength(self) -> float:
        return self.params[0]

    def apply_batch(self, densities: np.ndarray) -> np.ndarray:
        densities = np.asarray(densities, dtype=np.complex128)
        return _depolarizing_action(densities, self._strength(), self.dimension)

    def superoperator(self) -> np.ndarray:
        cached = self.__dict__.get("_superoperator")
        if cached is None:
            # (1 - p) I + (p/d) |vec I><vec I| in the row-major vec basis.
            p = self._strength()
            vec_identity = np.eye(self.dimension).reshape(-1)
            cached = (1.0 - p) * np.eye(self.dimension**2) + (
                p / self.dimension
            ) * np.outer(vec_identity, vec_identity)
            object.__setattr__(self, "_superoperator", cached)
        return cached


def _depolarizing_action(densities: np.ndarray, strengths, dim: int) -> np.ndarray:
    """``(1 - p) rho + (p/d) Tr(rho) I`` on a stack, with scalar or per-row ``p``.

    The single closed-form implementation shared by
    :meth:`_ClosedFormDepolarizing.apply_batch` and both depolarizing paths
    of :func:`apply_channel_grid`.
    """
    # Match the density dtype so a complex64 contraction stays complex64:
    # float64 strengths (or a float64 identity) would silently upcast the
    # whole stack back to complex128 and defeat the reduced-precision path.
    real = np.float32 if densities.dtype == np.complex64 else np.float64
    strengths = np.asarray(strengths, dtype=real)
    if strengths.ndim:
        strengths = strengths[:, None, None]
    traces = np.trace(densities, axis1=-2, axis2=-1)[..., None, None]
    return (1.0 - strengths) * densities + (strengths / dim) * traces * np.eye(
        dim, dtype=real
    )


def _depolarizing_kraus(p: float, dim: int) -> Tuple[np.ndarray, ...]:
    """The Weyl-basis Kraus operators of the depolarizing channel."""
    operators = [np.sqrt(1.0 - p * (dim**2 - 1) / dim**2) * np.eye(dim)]
    weight = np.sqrt(p) / dim
    operators.extend(weight * _weyl_operators(dim))
    return tuple(operators)


def depolarizing_channel(p: float, dim: int = 2) -> KrausChannel:
    """``rho -> (1 - p) rho + p I/d``: uniform contraction to the maximally mixed state.

    The Kraus set is the Weyl (shift/clock) basis: the identity with weight
    ``1 - p (d^2 - 1)/d^2`` and each of the ``d^2 - 1`` non-trivial Weyl
    unitaries with weight ``p/d^2``.  Because that set has ``d^2`` members,
    the returned channel acts through the closed form and materializes the
    Kraus operators only on demand (see :class:`_ClosedFormDepolarizing`).

    >>> channel = depolarizing_channel(1.0, dim=4)
    >>> rho = np.diag([1.0, 0, 0, 0])
    >>> np.allclose(channel.apply(rho), np.eye(4) / 4)
    True
    >>> len(channel.kraus)          # lazily materialized, completeness-checked
    16
    """
    p = _check_probability(p, "depolarizing")
    if dim <= 0:
        raise ChannelError(f"channel dimension must be positive, got {dim}")
    return _ClosedFormDepolarizing(
        name="depolarizing", kraus=(), params=(p,), dimension=int(dim)
    )


def dephasing_channel(p: float, dim: int = 2) -> KrausChannel:
    """``rho -> (1 - p) rho + p diag(rho)``: off-diagonal coherences decay.

    >>> channel = dephasing_channel(1.0, dim=2)
    >>> rho = np.full((2, 2), 0.5)                      # |+><+|
    >>> np.allclose(channel.apply(rho), np.eye(2) / 2)
    True
    """
    p = _check_probability(p, "dephasing")
    operators = [np.sqrt(1.0 - p) * np.eye(dim)]
    for level in range(dim):
        projector = np.zeros((dim, dim), dtype=np.complex128)
        projector[level, level] = 1.0
        operators.append(np.sqrt(p) * projector)
    return KrausChannel("dephasing", tuple(operators), params=(p,))


def amplitude_damping_channel(gamma: float, dim: int = 2) -> KrausChannel:
    """Energy relaxation toward ``|0>``: each excited level decays with rate ``gamma``.

    The qubit channel generalized to ``d`` levels: ``K_0`` keeps ``|0>`` and
    scales every excited level by ``sqrt(1 - gamma)``; ``K_j = sqrt(gamma)
    |0><j|`` relaxes level ``j`` directly to the ground state.

    >>> channel = amplitude_damping_channel(0.25, dim=2)
    >>> rho = np.array([[0.0, 0.0], [0.0, 1.0]])        # |1><1|
    >>> np.allclose(channel.apply(rho), [[0.25, 0], [0, 0.75]])
    True
    """
    gamma = _check_probability(gamma, "amplitude damping")
    keep = np.eye(dim, dtype=np.complex128) * np.sqrt(1.0 - gamma)
    keep[0, 0] = 1.0
    operators = [keep]
    for level in range(1, dim):
        decay = np.zeros((dim, dim), dtype=np.complex128)
        decay[0, level] = np.sqrt(gamma)
        operators.append(decay)
    return KrausChannel("amplitude-damping", tuple(operators), params=(gamma,))


def bit_flip_channel(p: float, dim: int = 2) -> KrausChannel:
    """With probability ``p`` apply the cyclic shift (the Pauli ``X`` for qubits)."""
    p = _check_probability(p, "bit flip")
    operators = (
        np.sqrt(1.0 - p) * np.eye(dim),
        np.sqrt(p) * _shift_operator(dim),
    )
    return KrausChannel("bit-flip", operators, params=(p,))


def phase_flip_channel(p: float, dim: int = 2) -> KrausChannel:
    """With probability ``p`` apply the clock phases (the Pauli ``Z`` for qubits)."""
    p = _check_probability(p, "phase flip")
    operators = (
        np.sqrt(1.0 - p) * np.eye(dim),
        np.sqrt(p) * _clock_operator(dim),
    )
    return KrausChannel("phase-flip", operators, params=(p,))


def flip_probability(accept_probability, readout_error: float):
    """Binary symmetric readout: the accept flag is misread with probability ``e``.

    Works elementwise on arrays, so the batched evaluators apply it to whole
    stacks of test factors at once.

    >>> flip_probability(1.0, 0.1)
    0.9
    >>> flip_probability(0.0, 0.1)
    0.1
    """
    if np.isscalar(readout_error) and readout_error == 0.0:
        return accept_probability
    return accept_probability * (1.0 - 2.0 * readout_error) + readout_error


def apply_channels(
    channels: Sequence[Optional[KrausChannel]], densities: np.ndarray
) -> np.ndarray:
    """Apply ``channels[i]`` to ``densities[i]`` (``None`` means noiseless).

    ``densities`` has shape ``(rows, d, d)``.  Rows sharing a channel are
    transformed together through one :meth:`KrausChannel.apply_batch` call
    (a superoperator matmul, or the channel's closed form).  This is the
    single-job sibling of :func:`apply_channel_grid` — the batched engine
    paths use the grid form; this one serves ad-hoc callers and tests.

    When every channel is trivial the *input array itself* is returned (no
    copy); callers treat the result as read-only.
    """
    densities = np.asarray(densities, dtype=np.complex128)
    rows, dim = densities.shape[0], densities.shape[1]
    if len(channels) != rows:
        raise DimensionMismatchError(
            f"got {len(channels)} channels for {rows} density rows"
        )
    # Group by the channel's value-stable key, not object identity: equal
    # channels built by different callers then share one apply_batch pass.
    by_channel: Dict[Tuple, Tuple[KrausChannel, list]] = {}
    for row, channel in enumerate(channels):
        if channel is None or channel.is_identity:
            continue
        if channel.dim != dim:
            raise DimensionMismatchError(
                f"channel {channel.name!r} acts on dimension {channel.dim}, "
                f"registers have dimension {dim}"
            )
        by_channel.setdefault(channel.key, (channel, []))[1].append(row)
    if not by_channel:
        return densities
    output = densities.copy()
    for channel, row_list in by_channel.values():
        if len(row_list) == rows:
            # One channel covers every row: transform in place, skip fancy
            # indexing (the hot case for uniform link-noise sweeps).
            output = channel.apply_batch(output)
        else:
            output[row_list] = channel.apply_batch(output[row_list])
    return output


def apply_channel_grid(
    grid: Sequence[Sequence[Optional[KrausChannel]]], densities: np.ndarray
) -> np.ndarray:
    """Apply ``grid[b][r]`` to ``densities[b, r]`` across a whole job batch.

    ``densities`` has shape ``(batch, rows, d, d)``.  Entries are grouped by
    channel value (:attr:`KrausChannel.key`), and every closed-form depolarizing entry — regardless
    of its strength — joins one strength-stacked broadcast, so a 256-point
    depolarizing sweep applies all of its channels in a single vectorized
    expression.  As with :func:`apply_channels`, the input array itself is
    returned (treat as read-only) when every entry is trivial.

    A ``complex64`` input stays ``complex64`` throughout (the engine's
    reduced-precision fast path); every other input is promoted to
    ``complex128`` as before.
    """
    densities = np.asarray(densities)
    if densities.dtype != np.complex64:
        densities = np.asarray(densities, dtype=np.complex128)
    batch, rows, dim = densities.shape[0], densities.shape[1], densities.shape[2]
    if len(grid) != batch:
        raise DimensionMismatchError(f"got {len(grid)} channel rows for batch {batch}")
    flat = densities.reshape(batch * rows, dim, dim)
    # Value-stable grouping (channel.key, not id()): equal channel objects
    # from different grid builders collapse into one batched application.
    by_channel: Dict[Tuple, Tuple[KrausChannel, list]] = {}
    for b, row_channels in enumerate(grid):
        if len(row_channels) != rows:
            raise DimensionMismatchError(
                f"got {len(row_channels)} channels for {rows} density rows"
            )
        for r, channel in enumerate(row_channels):
            if channel is None or channel.is_identity:
                continue
            if channel.dim != dim:
                raise DimensionMismatchError(
                    f"channel {channel.name!r} acts on dimension {channel.dim}, "
                    f"registers have dimension {dim}"
                )
            by_channel.setdefault(channel.key, (channel, []))[1].append(b * rows + r)
    if not by_channel:
        return densities
    depolarizing_rows: list = []
    depolarizing_strengths: list = []
    generic_groups = []
    for channel, row_list in by_channel.values():
        if isinstance(channel, _ClosedFormDepolarizing):
            depolarizing_rows.extend(row_list)
            depolarizing_strengths.extend([channel.params[0]] * len(row_list))
        else:
            generic_groups.append((channel, row_list))
    if not generic_groups and len(depolarizing_rows) == flat.shape[0]:
        # Every row is depolarizing (the uniform-sweep hot path): one
        # strength-stacked broadcast over the input, no row gathering.
        strengths = np.empty(flat.shape[0])
        strengths[depolarizing_rows] = depolarizing_strengths
        output = _depolarizing_action(flat, strengths, dim)
        return output.reshape(batch, rows, dim, dim)
    output = flat.copy()
    for channel, row_list in generic_groups:
        output[row_list] = channel.apply_batch(output[row_list])
    if depolarizing_rows:
        output[depolarizing_rows] = _depolarizing_action(
            output[depolarizing_rows], depolarizing_strengths, dim
        )
    return output.reshape(batch, rows, dim, dim)


def apply_channels_adjoint(
    operator: np.ndarray,
    dims: Sequence[int],
    channels: Sequence[Optional[KrausChannel]],
) -> np.ndarray:
    """Heisenberg-picture conjugation ``E -> (C_1^+ (x) ... (x) C_k^+)(E)``.

    For an accept element ``E`` on a tensor-product space and one optional
    channel per factor, the returned operator ``E'`` satisfies
    ``tr(E . (C_1 (x) ... (x) C_k)(rho)) = tr(E' rho)`` for *every* joint
    state ``rho`` (entangled or not): the adjoint of each channel,
    ``C^+(E) = sum_k K_k^+ E K_k``, is applied to ``E`` on that factor's
    axes.  The adversarial analyses use this to fold delivery/transmission
    noise into an acceptance operator before optimizing over noiseless
    proofs.
    """
    dims = [int(d) for d in dims]
    total = int(np.prod(dims)) if dims else 1
    op = np.asarray(operator, dtype=np.complex128)
    if op.shape != (total, total):
        raise DimensionMismatchError(
            f"operator shape {op.shape} does not match factor dimensions {dims}"
        )
    if len(channels) != len(dims):
        raise DimensionMismatchError(
            f"got {len(channels)} channels for {len(dims)} tensor factors"
        )
    for position, channel in enumerate(channels):
        if channel is None or channel.is_identity:
            continue
        dim = dims[position]
        if channel.dim != dim:
            raise DimensionMismatchError(
                f"channel {channel.name!r} acts on dimension {channel.dim}, "
                f"factor {position} has dimension {dim}"
            )
        pre = int(np.prod(dims[:position])) if position else 1
        post = int(np.prod(dims[position + 1 :])) if position + 1 < len(dims) else 1
        stack = np.stack(channel.kraus)
        tensor = op.reshape(pre, dim, post, pre, dim, post)
        op = np.einsum(
            "kca,PcQReS,keb->PaQRbS", stack.conj(), tensor, stack, optimize=True
        ).reshape(total, total)
    return op


def _empty_mapping() -> Mapping:
    return {}


@dataclass(frozen=True, eq=False)
class NoiseModel:
    """Per-link and per-node channel assignment plus measurement readout error.

    ``link`` / ``node`` are the defaults applied to every network link
    (registers in transit) and every node (proof delivery / input
    preparation); ``links`` / ``nodes`` override them for specific edges and
    nodes.  Link lookup is symmetric in the edge orientation.  An *empty*
    model (:attr:`is_trivial`) leaves protocols on the pure-state engine
    path — including models whose channels have zero strength, which instead
    exercise the full density-matrix path and must reproduce the pure
    numbers (the zero-noise parity tests).

    >>> model = NoiseModel.depolarizing(0.05, dim=4, readout_error=0.01)
    >>> model.link_channel("u", "v").name
    'depolarizing'
    >>> model.is_trivial
    False
    >>> NoiseModel().is_trivial
    True
    """

    link: Optional[KrausChannel] = None
    node: Optional[KrausChannel] = None
    readout_error: float = 0.0
    links: Mapping[Tuple[Label, Label], KrausChannel] = field(
        default_factory=_empty_mapping
    )
    nodes: Mapping[Label, KrausChannel] = field(default_factory=_empty_mapping)

    def __post_init__(self) -> None:
        error = float(self.readout_error)
        if not 0.0 <= error <= 1.0:
            raise ChannelError(f"readout error must lie in [0, 1], got {error}")
        object.__setattr__(self, "readout_error", error)
        object.__setattr__(self, "links", dict(self.links))
        object.__setattr__(self, "nodes", dict(self.nodes))

    @property
    def is_trivial(self) -> bool:
        """True when the model assigns no channels and no readout error."""
        return (
            self.link is None
            and self.node is None
            and not self.links
            and not self.nodes
            and self.readout_error == 0.0
        )

    def link_channel(self, u: Label, v: Label) -> Optional[KrausChannel]:
        """The channel of the link ``{u, v}`` (override, else default, else ``None``)."""
        override = self.links.get((u, v))
        if override is None:
            override = self.links.get((v, u))
        return override if override is not None else self.link

    def node_channel(self, node: Label) -> Optional[KrausChannel]:
        """The channel of ``node`` (override, else default, else ``None``)."""
        override = self.nodes.get(node)
        return override if override is not None else self.node

    @property
    def key(self) -> Tuple:
        """Hashable value-level summary of the model, for metadata/labels.

        NOT suitable as a program-cache key: the same model lands
        differently on differently-labeled networks, so caches of compiled
        programs must key on the *derived* per-job annotation
        (:attr:`repro.engine.jobs.ChainNoise.key`) instead.
        """
        return (
            None if self.link is None else self.link.key,
            None if self.node is None else self.node.key,
            self.readout_error,
            tuple(sorted((str(e), c.key) for e, c in self.links.items())),
            tuple(sorted((str(n), c.key) for n, c in self.nodes.items())),
        )

    # -- common uniform models ------------------------------------------------

    @classmethod
    def uniform_link(
        cls, channel: KrausChannel, readout_error: float = 0.0
    ) -> "NoiseModel":
        """Every link carries ``channel``; nodes are noiseless."""
        return cls(link=channel, readout_error=readout_error)

    @classmethod
    def depolarizing(
        cls, p: float, dim: int, readout_error: float = 0.0
    ) -> "NoiseModel":
        """Uniform depolarizing links of strength ``p`` on ``dim``-dimensional registers."""
        return cls.uniform_link(depolarizing_channel(p, dim), readout_error)

    @classmethod
    def dephasing(cls, p: float, dim: int, readout_error: float = 0.0) -> "NoiseModel":
        """Uniform dephasing links of strength ``p``."""
        return cls.uniform_link(dephasing_channel(p, dim), readout_error)

    @classmethod
    def amplitude_damping(
        cls, gamma: float, dim: int, readout_error: float = 0.0
    ) -> "NoiseModel":
        """Uniform amplitude-damping links of rate ``gamma``."""
        return cls.uniform_link(amplitude_damping_channel(gamma, dim), readout_error)


#: Named channel families, for sweep configuration by string.
CHANNEL_FAMILIES = {
    "depolarizing": depolarizing_channel,
    "dephasing": dephasing_channel,
    "amplitude-damping": amplitude_damping_channel,
    "bit-flip": bit_flip_channel,
    "phase-flip": phase_flip_channel,
}


def channel_family(name: str):
    """Look up a channel constructor ``(strength, dim) -> KrausChannel`` by name.

    >>> channel_family("dephasing")(0.5, 2).name
    'dephasing'
    """
    try:
        return CHANNEL_FAMILIES[name]
    except KeyError:
        raise ChannelError(
            f"unknown channel family {name!r}; available: {sorted(CHANNEL_FAMILIES)}"
        ) from None
