"""Distance measures between quantum states.

Implements the trace distance and fidelity exactly as defined in Section 2.1
of the paper, together with the Fuchs-van de Graaf inequalities (Fact 1) used
in the lower-bound arguments of Section 8.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.quantum.states import density_matrix


def trace_norm(matrix: np.ndarray) -> float:
    """The trace norm ``||A||_1 = tr sqrt(A^dagger A)`` (sum of singular values)."""
    mat = np.asarray(matrix, dtype=np.complex128)
    if mat.ndim != 2:
        raise DimensionMismatchError("trace norm is defined for matrices")
    singular_values = np.linalg.svd(mat, compute_uv=False)
    return float(np.sum(singular_values))


def trace_distance(rho, sigma) -> float:
    """``D(rho, sigma) = ||rho - sigma||_1 / 2`` (Section 2.1).

    Accepts kets or density matrices for either argument.
    """
    rho_m = density_matrix(rho)
    sigma_m = density_matrix(sigma)
    if rho_m.shape != sigma_m.shape:
        raise DimensionMismatchError(
            f"states have different dimensions: {rho_m.shape} vs {sigma_m.shape}"
        )
    return 0.5 * trace_norm(rho_m - sigma_m)


def fidelity(rho, sigma) -> float:
    """``F(rho, sigma) = tr sqrt(sqrt(rho) sigma sqrt(rho))`` (Section 2.1)."""
    rho_m = density_matrix(rho)
    sigma_m = density_matrix(sigma)
    if rho_m.shape != sigma_m.shape:
        raise DimensionMismatchError(
            f"states have different dimensions: {rho_m.shape} vs {sigma_m.shape}"
        )
    sqrt_rho = _matrix_sqrt(rho_m)
    inner = sqrt_rho @ sigma_m @ sqrt_rho
    value = np.trace(_matrix_sqrt(inner)).real
    return float(min(max(value, 0.0), 1.0 + 1e-9))


def purity(rho) -> float:
    """``tr(rho^2)``; equals 1 exactly for pure states."""
    rho_m = density_matrix(rho)
    return float(np.real(np.trace(rho_m @ rho_m)))


def fuchs_van_de_graaf_bounds(rho, sigma) -> Tuple[float, float]:
    """The lower/upper bounds of Fact 1: ``1 - F <= D <= sqrt(1 - F^2)``.

    Returns the tuple ``(1 - F, sqrt(1 - F^2))`` so callers can check that the
    trace distance lies in between.
    """
    f = fidelity(rho, sigma)
    lower = 1.0 - f
    upper = float(np.sqrt(max(0.0, 1.0 - f * f)))
    return lower, upper


def pure_state_overlap(psi: np.ndarray, phi: np.ndarray) -> float:
    """``|<psi|phi>|`` for two kets."""
    psi = np.asarray(psi, dtype=np.complex128).reshape(-1)
    phi = np.asarray(phi, dtype=np.complex128).reshape(-1)
    if psi.shape != phi.shape:
        raise DimensionMismatchError("kets have different dimensions")
    return float(abs(np.vdot(psi, phi)))


def _matrix_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a positive semidefinite Hermitian matrix."""
    hermitian = (matrix + matrix.conj().T) / 2
    eigenvalues, eigenvectors = np.linalg.eigh(hermitian)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T


def diamond_norm_upper_bound(kraus_a, kraus_b) -> float:
    """A simple upper bound on the diamond distance between two channels.

    Used only by diagnostic code; computed as the operator norm of the
    difference of the Choi matrices times the input dimension, which upper
    bounds the diamond norm.  This keeps the library free of SDP solvers.
    """
    choi_a = _choi(kraus_a)
    choi_b = _choi(kraus_b)
    diff = choi_a - choi_b
    dim_in = int(np.sqrt(choi_a.shape[0]))
    return float(dim_in * np.linalg.norm(diff, ord=2))


def _choi(kraus_ops) -> np.ndarray:
    """Choi matrix of a channel given by Kraus operators."""
    kraus_ops = [np.asarray(k, dtype=np.complex128) for k in kraus_ops]
    dim_out, dim_in = kraus_ops[0].shape
    choi = np.zeros((dim_in * dim_out, dim_in * dim_out), dtype=np.complex128)
    for i in range(dim_in):
        for j in range(dim_in):
            eij = np.zeros((dim_in, dim_in), dtype=np.complex128)
            eij[i, j] = 1.0
            block = sum(k @ eij @ k.conj().T for k in kraus_ops)
            choi[i * dim_out : (i + 1) * dim_out, j * dim_out : (j + 1) * dim_out] = block
    return choi
