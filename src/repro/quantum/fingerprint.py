"""Quantum fingerprints of classical strings.

A fingerprint scheme maps every ``n``-bit string ``x`` to a pure state
``|h_x>`` on ``O(log n)`` qubits so that distinct strings have bounded overlap
``|<h_x|h_y>| <= delta < 1``.  The one-way protocol ``pi`` for the equality
function referenced throughout the paper (Section 2.2.1) sends ``|h_x>`` from
Alice to Bob and lets Bob perform the two-outcome measurement
``{|h_y><h_y|, I - |h_y><h_y|}``: it accepts with probability 1 when ``x = y``
and rejects with probability at least ``1 - delta^2`` otherwise.

Three interchangeable schemes are provided:

``ExactCodeFingerprint``
    The BCWdW construction ``|h_x> = (1/sqrt(M)) sum_i |i>|E(x)_i>`` for an
    explicit linear code ``E`` whose minimum distance has been verified; the
    overlap bound is exact.
``HadamardCodeFingerprint``
    The same construction with the Hadamard code (relative distance exactly
    1/2, overlap bound exactly 1/2).  Register size grows linearly in ``n`` so
    this is used for very small ``n`` only.
``SimulatedFingerprint``
    A deterministic pseudo-random unit vector per string on a register of a
    chosen number of qubits.  The exact pairwise overlaps of the instantiated
    strings are computed on demand; this scheme substitutes for asymptotically
    good codes when the input length is too large for exact code search (see
    DESIGN.md, substitution table).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from math import ceil, log2
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.codes.linear_code import LinearCode, hadamard_code, random_linear_code
from repro.exceptions import EncodingError
from repro.quantum.measurement import POVM
from repro.quantum.states import normalize, outer
from repro.utils.bitstrings import validate_bitstring
from repro.utils.rng import ensure_rng


def fingerprint_register_qubits(n: int, constant: float = 3.0) -> int:
    """The paper's cost model for a fingerprint register: ``c log n`` qubits.

    ``constant`` plays the role of the constant ``c`` in Section 2.2.1.  The
    value is used only by the cost calculators; the simulators use the actual
    register sizes of the instantiated schemes.
    """
    if n <= 0:
        raise EncodingError("input length must be positive")
    return max(1, int(ceil(constant * log2(max(n, 2)))))


class FingerprintScheme(ABC):
    """Common interface of all fingerprint schemes."""

    def __init__(self, input_length: int):
        if input_length <= 0:
            raise EncodingError("input length must be positive")
        self.input_length = int(input_length)
        self._cache: Dict[str, np.ndarray] = {}

    # -- abstract ----------------------------------------------------------

    @property
    @abstractmethod
    def dim(self) -> int:
        """Dimension of the fingerprint register."""

    @abstractmethod
    def _build_state(self, x: str) -> np.ndarray:
        """Construct the fingerprint ket of the validated string ``x``."""

    @abstractmethod
    def overlap_bound(self) -> float:
        """A guaranteed upper bound on ``|<h_x|h_y>|`` over distinct strings."""

    # -- concrete ----------------------------------------------------------

    @property
    def cache_token(self) -> Tuple:
        """A stable value identity for engine operator-cache keys.

        Two scheme instances that produce identical fingerprints share a
        token, even across processes — which is what lets operator packs
        exported by one process score cache hits in another (the default
        object identity would never match after pickling).  Subclasses must
        surface *every* parameter that affects the fingerprint states
        through :meth:`_token_fields`.
        """
        return ("fp", type(self).__qualname__, self.input_length, *self._token_fields())

    def _token_fields(self) -> Tuple:
        """Scheme-specific state determining the fingerprints (for the token)."""
        return ()

    @property
    def num_qubits(self) -> float:
        """Number of qubits of the fingerprint register."""
        return float(log2(self.dim))

    def state(self, x: str) -> np.ndarray:
        """The fingerprint ket ``|h_x>`` (cached per string)."""
        cached = self._cache.get(x)
        if cached is None:
            # A cache hit implies the string was validated when first built.
            validate_bitstring(x, length=self.input_length)
            cached = self._cache[x] = self._build_state(x)
        return cached.copy()

    def overlap(self, x: str, y: str) -> float:
        """``|<h_x|h_y>|`` for the two given strings."""
        return float(abs(np.vdot(self.state(x), self.state(y))))

    def equality_test_povm(self, y: str) -> POVM:
        """Bob's measurement in the one-way EQ protocol: ``{|h_y><h_y|, I - ...}``."""
        accept = outer(self.state(y))
        return POVM.two_outcome(accept)

    def accept_probability(self, x: str, y: str) -> float:
        """Acceptance probability of the one-way EQ protocol on input ``(x, y)``."""
        return self.overlap(x, y) ** 2

    def max_overlap(self, strings: Iterable[str]) -> float:
        """Largest pairwise overlap over the given collection of distinct strings."""
        strings = list(dict.fromkeys(strings))
        best = 0.0
        for i, x in enumerate(strings):
            for y in strings[i + 1 :]:
                best = max(best, self.overlap(x, y))
        return best


class ExactCodeFingerprint(FingerprintScheme):
    """BCWdW fingerprints built from an explicit binary linear code."""

    def __init__(self, input_length: int, code: Optional[LinearCode] = None, rng=None):
        super().__init__(input_length)
        if code is None:
            codeword_length = max(4 * input_length, 8)
            code = random_linear_code(
                input_length,
                codeword_length,
                min_relative_distance=0.25,
                rng=ensure_rng(rng if rng is not None else 20240321),
            )
        if code.message_length != input_length:
            raise EncodingError(
                f"code message length {code.message_length} does not match input length {input_length}"
            )
        self.code = code

    def _token_fields(self) -> tuple:
        # The states are a pure function of the generator matrix.
        generator = np.ascontiguousarray(self.code.generator, dtype=np.int64)
        digest = hashlib.sha256(generator.tobytes()).hexdigest()[:16]
        return (self.code.codeword_length, digest)

    @property
    def dim(self) -> int:
        return 2 * self.code.codeword_length

    def overlap_bound(self) -> float:
        return self.code.fingerprint_overlap_bound()

    def _build_state(self, x: str) -> np.ndarray:
        codeword = self.code.encode(x)
        m = self.code.codeword_length
        vec = np.zeros(2 * m, dtype=np.complex128)
        for position, bit in enumerate(codeword):
            vec[2 * position + int(bit)] = 1.0
        return normalize(vec)


class HadamardCodeFingerprint(ExactCodeFingerprint):
    """Fingerprints from the Hadamard code: overlap exactly 1/2 for distinct inputs."""

    def __init__(self, input_length: int):
        super().__init__(input_length, code=hadamard_code(input_length))

    def overlap_bound(self) -> float:
        return 0.5


class SimulatedFingerprint(FingerprintScheme):
    """Deterministic pseudo-random fingerprints on a register of chosen size.

    Each string is mapped to a fixed Haar-like unit vector derived from a seed
    and the string itself, so repeated calls return identical states.  The
    scheme reports the *measured* worst-case overlap over the strings seen so
    far; tests verify it stays below the requested bound for the instances we
    simulate.
    """

    def __init__(self, input_length: int, num_qubits: Optional[int] = None, seed: int = 7):
        super().__init__(input_length)
        if num_qubits is None:
            num_qubits = fingerprint_register_qubits(input_length, constant=2.0)
        if num_qubits <= 0:
            raise EncodingError("fingerprint register must have at least one qubit")
        self._num_qubits = int(num_qubits)
        self._seed = int(seed)

    def _token_fields(self) -> tuple:
        # States are derived deterministically from (seed, n, register size).
        return (self._num_qubits, self._seed)

    @property
    def dim(self) -> int:
        return 2**self._num_qubits

    def overlap_bound(self) -> float:
        """The design target: overlaps concentrate around ``2^{-num_qubits/2}``.

        We report a conservative bound of ``4 / sqrt(dim)`` capped at 0.9;
        instantiated overlaps are checked in the test-suite.
        """
        return min(0.9, 4.0 / np.sqrt(self.dim))

    def _build_state(self, x: str) -> np.ndarray:
        payload = f"{self._seed}:{self.input_length}:{x}".encode()
        digest = int.from_bytes(hashlib.sha256(payload).digest()[:4], "big")
        generator = np.random.default_rng(digest)
        real = generator.normal(size=self.dim)
        imag = generator.normal(size=self.dim)
        return normalize(real + 1j * imag)
