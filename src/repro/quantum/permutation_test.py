"""The permutation test (Algorithm 2 of the paper).

The permutation test on ``k`` registers of equal dimension is the two-outcome
projective measurement onto the symmetric subspace: it accepts with
probability ``tr(Pi_sym rho)`` (Lemma 15) and satisfies the robustness bound
of Lemma 16 — if the test accepts with probability ``1 - eps`` then every pair
of reduced states is within trace distance ``2 sqrt(eps) + eps``.

For ``k = 2`` the permutation test coincides with the SWAP test.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.quantum.states import density_matrix
from repro.quantum.symmetric import symmetric_subspace_projector


def permutation_test_projector(dim: int, copies: int) -> np.ndarray:
    """Accept projector of the permutation test: the symmetric-subspace projector."""
    return symmetric_subspace_projector(dim, copies)


def permutation_test_accept_probability(rho, dim: int, copies: int) -> float:
    """Acceptance probability ``tr(Pi_sym rho)`` of the permutation test."""
    rho_m = density_matrix(rho)
    expected = dim**copies
    if rho_m.shape[0] != expected:
        raise DimensionMismatchError(
            f"state dimension {rho_m.shape[0]} does not match {dim}^{copies}"
        )
    projector = permutation_test_projector(dim, copies)
    return float(np.real(np.trace(projector @ rho_m)))


def permutation_test_accept_probability_product(states) -> float:
    """Acceptance probability for a product input ``|psi_1> (x) ... (x) |psi_k>``.

    Uses the permanent-style formula
    ``tr(Pi_sym |psi_1..k><psi_1..k|) = (1/k!) sum_pi prod_i <psi_i|psi_{pi(i)}>``,
    which avoids building the full ``d^k``-dimensional projector and therefore
    scales to the larger fingerprint registers used by the product-proof
    simulator.
    """
    from itertools import permutations as iter_permutations

    kets = [np.asarray(s, dtype=np.complex128).reshape(-1) for s in states]
    k = len(kets)
    if k == 0:
        raise DimensionMismatchError("permutation test needs at least one register")
    dim = kets[0].size
    if any(ket.size != dim for ket in kets):
        raise DimensionMismatchError("all registers must have the same dimension")
    gram = np.array(
        [[np.vdot(kets[i], kets[j]) for j in range(k)] for i in range(k)],
        dtype=np.complex128,
    )
    total = 0.0 + 0.0j
    for perm in iter_permutations(range(k)):
        product = 1.0 + 0.0j
        for i in range(k):
            product *= gram[i, perm[i]]
        total += product
    from math import factorial

    value = np.real(total) / factorial(k)
    return float(min(max(value, 0.0), 1.0))


def permutation_test_post_measurement_state(rho, dim: int, copies: int, accept: bool) -> np.ndarray:
    """Normalized post-measurement state of the permutation test."""
    rho_m = density_matrix(rho)
    projector = permutation_test_projector(dim, copies)
    if not accept:
        projector = np.eye(rho_m.shape[0], dtype=np.complex128) - projector
    unnormalized = projector @ rho_m @ projector
    probability = float(np.real(np.trace(unnormalized)))
    if probability <= 1e-15:
        raise DimensionMismatchError("conditioning on a zero-probability outcome")
    return unnormalized / probability
