"""Per-node Monte-Carlo transcripts of the path protocols.

The acceptance-probability API answers "with what probability do all nodes
accept"; operators of a real deployment also want to see *which* node raised
the alarm.  This module simulates single runs of the symmetrized SWAP-test
chain (Algorithm 3 and its relatives) node by node: symmetrization coins are
flipped, every SWAP test is sampled with its exact conditional probability,
and the right end samples its measurement, producing a transcript of per-node
verdicts whose aggregate statistics match the exact acceptance probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.topology import NodeId
from repro.protocols.base import ProductProof
from repro.protocols.equality import EqualityPathProtocol
from repro.quantum.swap_test import swap_test_accept_probability_pure
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class NodeVerdict:
    """Outcome of one node's local test during a single run."""

    node: NodeId
    test: str
    accepted: bool
    acceptance_probability: float


@dataclass(frozen=True)
class RunTranscript:
    """Full transcript of one protocol run."""

    verdicts: Tuple[NodeVerdict, ...]
    symmetrization_bits: Dict[NodeId, int] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        """True when every node accepted."""
        return all(verdict.accepted for verdict in self.verdicts)

    @property
    def rejecting_nodes(self) -> List[NodeId]:
        """The nodes that raised the alarm in this run."""
        return [verdict.node for verdict in self.verdicts if not verdict.accepted]


def simulate_equality_path_run(
    protocol: EqualityPathProtocol,
    inputs: Sequence[str],
    proof: Optional[ProductProof] = None,
    rng: RngLike = None,
) -> RunTranscript:
    """One per-node run of Algorithm 3 on a path.

    The simulation draws the symmetrization coin of every intermediate node,
    then evaluates each SWAP test in order with its exact acceptance
    probability conditioned on the sampled coins (exact for product proofs,
    because the tests act on disjoint register pairs given the coins), and
    finally samples the right end's fingerprint measurement.
    """
    generator = ensure_rng(rng)
    inputs = protocol.problem.validate_inputs(inputs)
    if proof is None:
        proof = protocol.honest_proof(inputs)
    else:
        protocol.validate_proof(proof)

    left_state = protocol.fingerprints.state(inputs[0])
    right_target = protocol.fingerprints.state(inputs[1])

    bits: Dict[NodeId, int] = {}
    kept: Dict[int, np.ndarray] = {}
    forwarded: Dict[int, np.ndarray] = {}
    for index in range(1, protocol.path_length):
        coin = int(generator.integers(0, 2))
        node = protocol.path_nodes[index]
        bits[node] = coin
        first = proof.state(protocol._register_name(index, 0))
        second = proof.state(protocol._register_name(index, 1))
        kept[index] = first if coin == 0 else second
        forwarded[index] = second if coin == 0 else first

    verdicts: List[NodeVerdict] = []
    incoming = left_state
    for index in range(1, protocol.path_length):
        node = protocol.path_nodes[index]
        probability = swap_test_accept_probability_pure(incoming, kept[index])
        accepted = bool(generator.random() < probability)
        verdicts.append(
            NodeVerdict(node=node, test="swap-test", accepted=accepted, acceptance_probability=probability)
        )
        incoming = forwarded[index]

    final_probability = float(abs(np.vdot(right_target, incoming)) ** 2)
    final_accept = bool(generator.random() < final_probability)
    verdicts.append(
        NodeVerdict(
            node=protocol.path_nodes[-1],
            test="fingerprint-measurement",
            accepted=final_accept,
            acceptance_probability=final_probability,
        )
    )
    return RunTranscript(verdicts=tuple(verdicts), symmetrization_bits=bits)


def empirical_acceptance_from_transcripts(
    protocol: EqualityPathProtocol,
    inputs: Sequence[str],
    proof: Optional[ProductProof] = None,
    shots: int = 200,
    rng: RngLike = None,
) -> float:
    """Empirical all-accept frequency over independent transcripts.

    The per-run sampling above ignores the (classically correlated) influence
    of a node's SWAP-test *outcome* on later nodes' states; for product proofs
    this is exact because the tests act on disjoint registers once the coins
    are fixed, so the empirical frequency converges to
    :meth:`EqualityPathProtocol.acceptance_probability`.
    """
    generator = ensure_rng(rng)
    hits = 0
    for _ in range(shots):
        transcript = simulate_equality_path_run(protocol, inputs, proof, generator)
        if transcript.accepted:
            hits += 1
    return hits / shots


def rejection_histogram(
    protocol: EqualityPathProtocol,
    inputs: Sequence[str],
    proof: Optional[ProductProof] = None,
    shots: int = 500,
    rng: RngLike = None,
) -> Dict[NodeId, int]:
    """How often each node raises the alarm over repeated runs.

    Useful for localising where along the chain a corrupted proof (or a
    divergent input) is detected.
    """
    generator = ensure_rng(rng)
    counts: Dict[NodeId, int] = {node: 0 for node in protocol.path_nodes}
    for _ in range(shots):
        transcript = simulate_equality_path_run(protocol, inputs, proof, generator)
        for node in transcript.rejecting_nodes:
            counts[node] += 1
    return counts
