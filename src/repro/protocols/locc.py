"""LOCC dQMA conversion (Lemma 20, quoted from Le Gall–Miyamoto–Nishimura).

A dQMA protocol uses quantum messages between the verifiers.  Lemma 20 (GMN23a)
replaces the verification-stage quantum communication by classical
communication (LOCC) at the price of enlarging the proofs:

    local proof   s_c  ->  s_c + O(d_max * s_m * s_tm)
    local message s_m  ->  O(s_m * s_tm)

where ``d_max`` is the maximum degree and ``s_tm`` the total number of qubits
sent during verification.  Combining this with Theorem 19 gives Corollary 21:
an LOCC dQMA protocol for ``EQ^t_n`` with local proof
``O(d_max |V| r^4 log^2 n)`` and message ``O(|V| r^4 log^2 n)``.

This module provides the cost conversion for any instantiated protocol and the
Corollary 21 formula; the verification-stage rewriting itself is not simulated
(the acceptance statistics are unchanged by construction, which is the content
of the cited lemma).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from repro.exceptions import BoundError
from repro.protocols.base import CostSummary, DQMAProtocol


@dataclass(frozen=True)
class LOCCConversionCost:
    """Costs of the LOCC dQMA protocol produced by Lemma 20."""

    original: CostSummary
    max_degree: int
    total_verification_qubits: float
    local_proof_qubits: float
    local_message_bits: float

    @property
    def proof_overhead_factor(self) -> float:
        """Ratio of the LOCC local proof to the original local proof."""
        if self.original.local_proof <= 0:
            return float("inf")
        return self.local_proof_qubits / self.original.local_proof


def locc_conversion_cost(protocol: DQMAProtocol) -> LOCCConversionCost:
    """Apply the Lemma 20 cost conversion to an instantiated dQMA protocol."""
    summary = protocol.cost_summary()
    max_degree = protocol.network.max_degree
    total_verification = summary.total_message
    local_proof = summary.local_proof + max_degree * summary.local_message * total_verification
    local_message = summary.local_message * total_verification
    return LOCCConversionCost(
        original=summary,
        max_degree=max_degree,
        total_verification_qubits=total_verification,
        local_proof_qubits=local_proof,
        local_message_bits=local_message,
    )


def corollary21_local_proof_bound(
    n: int, r: int, num_nodes: int, max_degree: int, fingerprint_constant: float = 3.0
) -> float:
    """Corollary 21: LOCC dQMA local proof size ``O(d_max |V| r^4 log^2 n)`` for ``EQ``."""
    if n <= 0 or r <= 0 or num_nodes <= 0 or max_degree <= 0:
        raise BoundError("all parameters must be positive")
    log_n = fingerprint_constant * log2(max(n, 2))
    return float(max_degree) * num_nodes * (r**4) * (log_n**2)


def corollary21_local_message_bound(
    n: int, r: int, num_nodes: int, fingerprint_constant: float = 3.0
) -> float:
    """Corollary 21: LOCC dQMA local message size ``O(|V| r^4 log^2 n)`` for ``EQ``."""
    if n <= 0 or r <= 0 or num_nodes <= 0:
        raise BoundError("all parameters must be positive")
    log_n = fingerprint_constant * log2(max(n, 2))
    return float(num_nodes) * (r**4) * (log_n**2)
