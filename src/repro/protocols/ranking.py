"""dQMA protocol for ranking verification (Section 5.2, Algorithm 8).

To verify that terminal ``u_i`` holds the ``j``-th largest input, the prover
sends, for every other terminal ``u_k``:

* a one-qubit *direction register* to every node on the tree path between
  ``u_i`` and ``u_k`` (``0`` encodes ``x_i >= x_k``, ``1`` encodes
  ``x_i < x_k``), and
* a proof for the greater-than protocol (``GT_>=`` or ``GT_<`` according to
  the direction) along that path.

All nodes on a path compare their direction bits; the nodes then run the
corresponding greater-than protocol; finally the root counts the number of
``>=`` directions and rejects unless it matches the claimed rank.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.problems import RankingVerificationProblem
from repro.exceptions import ProtocolError
from repro.network.spanning_tree import build_verification_tree
from repro.network.topology import Network, NodeId, path_network, star_network
from repro.protocols.base import (
    DQMAProtocol,
    ProductProof,
    ProofRegister,
    RepeatedProtocol,
    soundness_repetitions,
)
from repro.protocols.greater_than import GreaterThanPathProtocol
from repro.quantum.fingerprint import ExactCodeFingerprint, FingerprintScheme
from repro.quantum.states import basis_state


class RankingVerificationProtocol(DQMAProtocol):
    """Algorithm 8: verify that terminal ``i`` holds the ``j``-th largest input."""

    def __init__(
        self,
        network: Network,
        fingerprints: FingerprintScheme,
        target_terminal: int,
        target_rank: int,
        problem: Optional[RankingVerificationProblem] = None,
    ):
        if problem is None:
            problem = RankingVerificationProblem(
                fingerprints.input_length, network.num_terminals, target_terminal, target_rank
            )
        if problem.input_length != fingerprints.input_length:
            raise ProtocolError("fingerprint scheme and problem disagree on the input length")
        super().__init__(problem, network)
        self.fingerprints = fingerprints
        self.target_terminal = int(target_terminal)
        self.target_rank = int(target_rank)
        root = network.terminals[self.target_terminal - 1]
        self.tree = build_verification_tree(network, root=root)
        self.root = root
        self._paths: Dict[int, List[NodeId]] = {}
        self._sub_protocols: Dict[int, Dict[str, GreaterThanPathProtocol]] = {}
        self._build_paths()

    @classmethod
    def on_star(
        cls,
        input_length: int,
        num_terminals: int,
        target_terminal: int,
        target_rank: int,
        fingerprints: Optional[FingerprintScheme] = None,
    ) -> "RankingVerificationProtocol":
        """Convenience constructor on a star network with terminals at the leaves."""
        if fingerprints is None:
            fingerprints = ExactCodeFingerprint(input_length)
        return cls(star_network(num_terminals), fingerprints, target_terminal, target_rank)

    # -- construction ------------------------------------------------------------

    def _other_terminal_indices(self) -> List[int]:
        return [
            index
            for index in range(self.problem.num_inputs)
            if index != self.target_terminal - 1
        ]

    def _build_paths(self) -> None:
        terminals = list(self.network.terminals)
        for other in self._other_terminal_indices():
            terminal = terminals[other]
            physical_path = self.network.shortest_path(self.root, terminal)
            self._paths[other] = physical_path
            length = len(physical_path) - 1
            # Both direction variants share one set of prover registers, so the
            # strict variant's index register is widened to match the sentinel
            # dimension of the non-strict one.
            shared_index_dim = self.fingerprints.input_length + 1
            self._sub_protocols[other] = {
                ">=": GreaterThanPathProtocol(
                    path_network(length), self.fingerprints, variant=">=", index_dim=shared_index_dim
                ),
                "<": GreaterThanPathProtocol(
                    path_network(length), self.fingerprints, variant="<", index_dim=shared_index_dim
                ),
            }

    # -- layout --------------------------------------------------------------------

    def _direction_register_name(self, other: int, position: int) -> str:
        return f"D[{other},{position}]"

    def _sub_register_name(self, other: int, base_name: str) -> str:
        return f"GT[{other}]:{base_name}"

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        for other, physical_path in self._paths.items():
            for position, node in enumerate(physical_path):
                registers.append(
                    ProofRegister(self._direction_register_name(other, position), node, 2)
                )
            # Both direction branches share the same registers; the prover sends
            # one set of GT-proof registers per path whose contents depend on
            # the direction.  Cost accounting uses the ">=" layout (identical
            # sizes to "<").
            sub = self._sub_protocols[other][">="]
            for register in sub.proof_registers():
                node_index = sub.path_nodes.index(register.node)
                physical_node = physical_path[node_index]
                registers.append(
                    ProofRegister(self._sub_register_name(other, register.name), physical_node, register.dim)
                )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages: Dict[Tuple[NodeId, NodeId], float] = {}
        for other, physical_path in self._paths.items():
            sub = self._sub_protocols[other][">="]
            sub_messages = sub.message_qubits()
            for (left, right), qubits in sub_messages.items():
                left_index = sub.path_nodes.index(left)
                right_index = sub.path_nodes.index(right)
                edge = (physical_path[left_index], physical_path[right_index])
                messages[edge] = messages.get(edge, 0.0) + qubits + 1.0  # +1 direction bit
        return messages

    # -- proofs -----------------------------------------------------------------------

    def _direction_for(self, inputs: Sequence[str], other: int) -> int:
        xi = inputs[self.target_terminal - 1]
        xk = inputs[other]
        return 0 if int(xi, 2) >= int(xk, 2) else 1

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        states: Dict[str, np.ndarray] = {}
        for other, physical_path in self._paths.items():
            direction = self._direction_for(inputs, other)
            for position in range(len(physical_path)):
                states[self._direction_register_name(other, position)] = basis_state(2, direction)
            variant = ">=" if direction == 0 else "<"
            sub = self._sub_protocols[other][variant]
            sub_inputs = (inputs[self.target_terminal - 1], inputs[other])
            sub_proof = sub.honest_proof(sub_inputs)
            for name in sub_proof.register_names:
                states[self._sub_register_name(other, name)] = sub_proof.state(name)
        return ProductProof(states)

    # -- acceptance ----------------------------------------------------------------------

    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> float:
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)

        others = self._other_terminal_indices()
        per_path: Dict[int, Dict[int, float]] = {}
        for other in others:
            per_path[other] = {
                0: self._path_acceptance(inputs, proof, other, direction=0),
                1: self._path_acceptance(inputs, proof, other, direction=1),
            }

        required = self.problem.num_inputs - self.target_rank
        total = 0.0
        for directions in iter_product((0, 1), repeat=len(others)):
            count_ge = sum(1 for d in directions if d == 0)
            if count_ge != required:
                continue  # the root rejects the direction pattern outright
            probability = 1.0
            for other, direction in zip(others, directions):
                probability *= per_path[other][direction]
                if probability == 0.0:
                    break
            total += probability
        return float(min(max(total, 0.0), 1.0))

    def _path_acceptance(
        self, inputs: Sequence[str], proof: ProductProof, other: int, direction: int
    ) -> float:
        """Joint probability that path ``other`` measures ``direction`` everywhere and accepts."""
        physical_path = self._paths[other]
        joint = 1.0
        for position in range(len(physical_path)):
            amplitudes = proof.state(self._direction_register_name(other, position))
            joint *= float(abs(amplitudes[direction]) ** 2)
            if joint == 0.0:
                return 0.0
        variant = ">=" if direction == 0 else "<"
        sub = self._sub_protocols[other][variant]
        sub_inputs = (inputs[self.target_terminal - 1], inputs[other])
        sub_states = {}
        for register in sub.proof_registers():
            sub_states[register.name] = proof.state(self._sub_register_name(other, register.name))
        sub_proof = ProductProof(sub_states)
        return joint * sub.acceptance_probability(sub_inputs, sub_proof)

    # -- paper parameters -------------------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """Single-shot gap of the worst (longest) greater-than sub-protocol."""
        longest = max(len(path) - 1 for path in self._paths.values())
        return 4.0 / (81.0 * max(longest, 1) ** 2)

    def paper_repetitions(self) -> int:
        """Repetition count for soundness 1/3."""
        return soundness_repetitions(self.single_shot_soundness_gap())

    def repeated(self, repetitions: Optional[int] = None) -> RepeatedProtocol:
        """Parallel repetition of the protocol."""
        if repetitions is None:
            repetitions = self.paper_repetitions()
        return RepeatedProtocol(self, repetitions)
