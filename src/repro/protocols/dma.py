"""Classical distributed Merlin-Arthur (dMA) baselines.

The paper's quantum advantage statements compare against classical protocols:

* the *trivial* protocol in which the prover sends the whole ``n``-bit input to
  every node (Section 1.2) — completeness 1, soundness 0, total proof
  ``Theta(r n)`` bits, matching the Section 4.2 lower bound up to constants;
* truncated-proof protocols, which fall below the ``Omega(r n)`` bound and are
  therefore *unsound*: the benchmarks exhibit explicit fooling inputs, which is
  the constructive content of Lemma 23 / Proposition 24.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

from repro.comm.problems import EqualityProblem
from repro.exceptions import ProofError, ProtocolError
from repro.network.topology import Network, NodeId, path_network
from repro.protocols.base import CostSummary
from repro.utils.bitstrings import validate_bitstring


class ClassicalDMAProtocol(ABC):
    """A classical dMA protocol: bit-string proofs, deterministic or randomized verification."""

    def __init__(self, problem: EqualityProblem, network: Network):
        self.problem = problem
        self.network = network
        if len(network.terminals) != problem.num_inputs:
            raise ProtocolError("terminal count does not match the problem arity")

    @abstractmethod
    def proof_bits_per_node(self) -> Dict[NodeId, int]:
        """Number of proof bits sent to each node."""

    @abstractmethod
    def honest_proof(self, inputs: Sequence[str]) -> Dict[NodeId, str]:
        """The honest prover's proof assignment."""

    @abstractmethod
    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[Dict[NodeId, str]] = None
    ) -> float:
        """Probability that all nodes accept."""

    # -- cost accounting -----------------------------------------------------

    def local_proof_bits(self) -> int:
        """Largest per-node proof size."""
        sizes = self.proof_bits_per_node()
        return max(sizes.values()) if sizes else 0

    def total_proof_bits(self) -> int:
        """Total proof size over all nodes."""
        return sum(self.proof_bits_per_node().values())

    def cost_summary(self) -> CostSummary:
        """Cost record (message sizes equal the proof sizes exchanged with neighbours)."""
        return CostSummary(
            local_proof=float(self.local_proof_bits()),
            total_proof=float(self.total_proof_bits()),
            local_message=float(self.local_proof_bits()),
            total_message=float(self.local_proof_bits() * max(len(self.network.edges), 1)),
            rounds=1,
        )

    def _validate_proof(self, proof: Dict[NodeId, str]) -> None:
        sizes = self.proof_bits_per_node()
        for node, expected in sizes.items():
            if node not in proof:
                raise ProofError(f"classical proof is missing node {node!r}")
            validate_bitstring(proof[node], length=expected)


class TrivialEqualityDMA(ClassicalDMAProtocol):
    """The trivial classical protocol: the prover sends the full string to every node.

    Every node checks that its proof equals its neighbours' proofs, and each
    terminal additionally checks the proof against its own input.  The protocol
    is deterministic: completeness 1, soundness 0, with ``n`` proof bits per
    node (``Theta(r n)`` in total on a path).
    """

    def __init__(self, problem: EqualityProblem, network: Network):
        super().__init__(problem, network)

    @classmethod
    def on_path(cls, input_length: int, path_length: int) -> "TrivialEqualityDMA":
        """Convenience constructor on the standard path."""
        return cls(EqualityProblem(input_length, 2), path_network(path_length))

    def proof_bits_per_node(self) -> Dict[NodeId, int]:
        return {node: self.problem.input_length for node in self.network.nodes}

    def honest_proof(self, inputs: Sequence[str]) -> Dict[NodeId, str]:
        inputs = self.problem.validate_inputs(inputs)
        return {node: inputs[0] for node in self.network.nodes}

    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[Dict[NodeId, str]] = None
    ) -> float:
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        self._validate_proof(proof)
        for node in self.network.nodes:
            for neighbour in self.network.neighbors(node):
                if proof[node] != proof[neighbour]:
                    return 0.0
        for terminal, value in zip(self.network.terminals, inputs):
            if proof[terminal] != value:
                return 0.0
        return 1.0


class TruncationEqualityDMA(ClassicalDMAProtocol):
    """A deliberately-undersized classical protocol: proofs carry only a prefix.

    The prover sends only the first ``proof_bits`` bits of the claimed common
    string; nodes compare prefixes.  Completeness stays 1, but as soon as
    ``proof_bits < n`` there are fooling input pairs the protocol accepts —
    the constructive failure mode behind the ``Omega(r n)`` classical lower
    bound of Section 4.2.
    """

    def __init__(self, problem: EqualityProblem, network: Network, proof_bits: int):
        super().__init__(problem, network)
        if proof_bits < 0 or proof_bits > problem.input_length:
            raise ProtocolError("proof_bits must be between 0 and the input length")
        self.proof_bits = int(proof_bits)

    def proof_bits_per_node(self) -> Dict[NodeId, int]:
        return {node: self.proof_bits for node in self.network.nodes}

    def honest_proof(self, inputs: Sequence[str]) -> Dict[NodeId, str]:
        inputs = self.problem.validate_inputs(inputs)
        prefix = inputs[0][: self.proof_bits]
        return {node: prefix for node in self.network.nodes}

    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[Dict[NodeId, str]] = None
    ) -> float:
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        self._validate_proof(proof)
        for node in self.network.nodes:
            for neighbour in self.network.neighbors(node):
                if proof[node] != proof[neighbour]:
                    return 0.0
        for terminal, value in zip(self.network.terminals, inputs):
            if proof[terminal] != value[: self.proof_bits]:
                return 0.0
        return 1.0

    def fooling_pair(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """An accepted no-instance demonstrating the soundness failure.

        Returns ``(yes_instance, accepted_no_instance)``: two inputs that share
        the proof prefix but differ in the suffix, so the protocol accepts both
        with probability 1 while the second is a no-instance of ``EQ``.
        Only defined when ``proof_bits < n``.
        """
        n = self.problem.input_length
        if self.proof_bits >= n:
            raise ProtocolError("the full-prefix protocol has no fooling pair")
        base = "0" * n
        other = "0" * (n - 1) + "1"
        yes_instance = tuple([base] * self.problem.num_inputs)
        no_instance = tuple([base] * (self.problem.num_inputs - 1) + [other])
        return yes_instance, no_instance
