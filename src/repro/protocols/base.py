"""Common framework shared by every distributed verification protocol.

The central abstractions are

``ProofRegister``
    A named proof register the prover sends to a specific node.
``ProductProof``
    An assignment of a pure state to every proof register (the proofs that
    honest provers send, and the separable proofs of the ``dQMA_sep,sep``
    model).
``DQMAProtocol``
    The protocol interface: register layout, honest proof, exact acceptance
    probability for product proofs, Monte-Carlo runs, and cost accounting.
``RepeatedProtocol``
    Generic parallel repetition (the paper's Algorithm 4 pattern): a node of
    the repeated protocol accepts iff it accepts in every copy.

Noise-capable protocols (equality on paths and trees, the relay protocol)
additionally accept a :class:`~repro.quantum.channels.NoiseModel` and
translate it into engine-level channel annotations when compiling their
acceptance programs; the base class needs no noise hooks because the
annotations live on the compiled jobs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.comm.problems import Problem
from repro.engine import Engine, TreeProgram, default_engine, get_backend
from repro.exceptions import ProofError, ProtocolError
from repro.network.topology import Network, NodeId
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ProofRegister:
    """A proof register: its name, the node that receives it, and its dimension."""

    name: str
    node: NodeId
    dim: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ProofError("proof register name must be non-empty")
        if self.dim <= 0:
            raise ProofError(f"register {self.name!r} must have positive dimension")

    @property
    def qubits(self) -> float:
        """Number of qubits of the register."""
        return float(log2(self.dim))


class ProductProof:
    """A proof that is a product state across proof registers."""

    def __init__(self, states: Mapping[str, np.ndarray]):
        self._states: Dict[str, np.ndarray] = {}
        for name, state in states.items():
            vec = np.asarray(state, dtype=np.complex128).reshape(-1)
            norm = np.linalg.norm(vec)
            if norm < 1e-12:
                raise ProofError(f"proof state for register {name!r} is the zero vector")
            self._states[name] = vec / norm

    def state(self, name: str) -> np.ndarray:
        """The proof state assigned to the named register."""
        if name not in self._states:
            raise ProofError(f"proof has no state for register {name!r}")
        return self._states[name].copy()

    def has(self, name: str) -> bool:
        """True when the proof assigns a state to the named register."""
        return name in self._states

    @property
    def register_names(self) -> Tuple[str, ...]:
        """Names of the registers this proof covers."""
        return tuple(self._states.keys())

    def validate_against(self, registers: Sequence[ProofRegister]) -> None:
        """Check that the proof covers exactly the protocol's registers with matching dims."""
        expected = {reg.name: reg.dim for reg in registers}
        for name, dim in expected.items():
            if name not in self._states:
                raise ProofError(f"proof is missing register {name!r}")
            if self._states[name].size != dim:
                raise ProofError(
                    f"proof state for register {name!r} has dimension "
                    f"{self._states[name].size}, expected {dim}"
                )
        extra = set(self._states) - set(expected)
        if extra:
            raise ProofError(f"proof contains unknown registers: {sorted(extra)}")

    def replaced(self, name: str, state: np.ndarray) -> "ProductProof":
        """A copy of the proof with one register's state replaced."""
        states = dict(self._states)
        states[name] = state
        return ProductProof(states)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one Monte-Carlo run of a protocol."""

    accepted: bool
    acceptance_probability: float
    node_outcomes: Dict[NodeId, bool] = field(default_factory=dict)


@dataclass(frozen=True)
class CostSummary:
    """Cost of a protocol instance, in qubits (or bits for classical protocols)."""

    local_proof: float
    total_proof: float
    local_message: float
    total_message: float
    rounds: int = 1

    @property
    def proof_plus_communication(self) -> float:
        """The quantity bounded by the Section 8 lower bounds."""
        return self.total_proof + self.total_message


class DQMAProtocol(ABC):
    """Interface of every distributed Merlin-Arthur protocol in the library.

    Acceptance probabilities are computed through a pluggable simulation
    engine (:mod:`repro.engine`).  Protocols whose verification reduces to a
    symmetrized SWAP-test chain or a tree of SWAP/permutation tests implement
    :meth:`_acceptance_program`, compiling each instance to a
    :class:`~repro.engine.jobs.ChainProgram` / :class:`~repro.engine.jobs.
    TreeProgram`; the base class then provides both the scalar
    :meth:`acceptance_probability` and the batched
    :meth:`acceptance_probabilities` by delegating to the engine, which
    stacks every job of a batch into one backend contraction per job type.

    Instances that do not compile (a different verification structure, or a
    fan-out beyond the engine's enumeration limits) return ``None`` from
    :meth:`_acceptance_program` and evaluate through
    :meth:`_scalar_acceptance_probability` — either the protocol's dedicated
    scalar implementation or, for protocols that never compile, their direct
    :meth:`acceptance_probability` override.
    """

    def __init__(self, problem: Problem, network: Network):
        self.problem = problem
        self.network = network
        self._engine: Optional[Engine] = None
        if len(network.terminals) != problem.num_inputs:
            raise ProtocolError(
                f"problem {problem.name} has {problem.num_inputs} inputs but the "
                f"network has {len(network.terminals)} terminals"
            )

    # -- engine ------------------------------------------------------------

    @property
    def engine(self) -> Engine:
        """The simulation engine (the process-wide default unless injected)."""
        return self._engine if self._engine is not None else default_engine()

    def use_engine(self, engine) -> "DQMAProtocol":
        """Inject an :class:`Engine` (or a backend name / instance); returns ``self``."""
        if engine is None or isinstance(engine, Engine):
            self._engine = engine
        else:
            self._engine = Engine(backend=get_backend(engine))
        return self

    def with_noise(self, noise) -> "DQMAProtocol":
        """A sibling protocol evaluating under the given noise model.

        Noise-capable protocols override this to rebuild themselves with the
        model mapped onto their network (sharing the injected engine); the
        noisy-soundness analyses rely on it to move strategy batches onto the
        engine's density-matrix path.
        """
        raise ProtocolError(
            f"{type(self).__name__} does not support noise models; "
            "noisy evaluation needs a protocol with a with_noise override"
        )

    # -- abstract ----------------------------------------------------------

    @abstractmethod
    def proof_registers(self) -> List[ProofRegister]:
        """The proof registers the prover sends, with their receiving nodes."""

    @abstractmethod
    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        """The honest prover's proof for the given inputs.

        For yes-instances the returned proof must achieve the protocol's
        completeness; for no-instances it is the prover's best "truthful"
        attempt and carries no guarantee.
        """

    # -- acceptance ---------------------------------------------------------

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> Optional[TreeProgram]:
        """The program computing this protocol's acceptance, if it compiles.

        Chain-reducible protocols return a :class:`ChainProgram`, tree-rooted
        protocols a :class:`TreeProgram`; families with a different
        verification structure (and instances beyond the engine's enumeration
        limits) return ``None`` and evaluate through
        :meth:`_scalar_acceptance_probability`.
        """
        return None

    def acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> Optional[TreeProgram]:
        """Public accessor for the compiled acceptance program (or ``None``)."""
        return self._acceptance_program(inputs, proof)

    def _scalar_acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> float:
        """Fallback for instances that do not compile to a program."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _acceptance_program, "
            "_scalar_acceptance_probability or acceptance_probability"
        )

    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> float:
        """Exact probability that *all* nodes accept, for a product proof.

        ``proof = None`` uses the honest proof.
        """
        program = self._acceptance_program(inputs, proof)
        if program is None:
            return self._scalar_acceptance_probability(inputs, proof)
        return self.engine.evaluate_program(program)

    def _proofs_for_batch(
        self,
        inputs_batch: Sequence[Sequence[str]],
        proofs: Optional[Sequence[Optional[ProductProof]]],
    ) -> List[Optional[ProductProof]]:
        if proofs is None:
            return [None] * len(inputs_batch)
        proofs = list(proofs)
        if len(proofs) != len(inputs_batch):
            raise ProtocolError(
                f"got {len(proofs)} proofs for {len(inputs_batch)} input tuples"
            )
        return proofs

    def acceptance_probabilities(
        self,
        inputs_batch: Sequence[Sequence[str]],
        proofs: Optional[Sequence[Optional[ProductProof]]] = None,
    ) -> np.ndarray:
        """Acceptance probability of every input tuple, evaluated as one batch.

        ``proofs`` is an optional per-item sequence (``None`` entries use the
        honest proof).  Program-compiling protocols (chains *and* trees)
        stack every job of the batch into a single backend contraction per
        job type; other protocols fall back to a scalar loop through the
        engine.
        """
        proofs = self._proofs_for_batch(inputs_batch, proofs)
        programs = [
            self._acceptance_program(inputs, proof)
            for inputs, proof in zip(inputs_batch, proofs)
        ]
        if programs and all(program is not None for program in programs):
            return self.engine.evaluate_programs(programs)
        return self.engine.map_scalar(
            lambda item: self.acceptance_probability(item[0], item[1]),
            zip(inputs_batch, proofs),
        )

    def run_many(
        self,
        inputs_batch: Sequence[Sequence[str]],
        proofs: Optional[Sequence[Optional[ProductProof]]] = None,
        rng: RngLike = None,
    ) -> List[RunResult]:
        """One Monte-Carlo run per input tuple, on batched exact probabilities."""
        generator = ensure_rng(rng)
        probabilities = self.acceptance_probabilities(inputs_batch, proofs)
        draws = generator.random(len(probabilities))
        return [
            RunResult(accepted=bool(draw < probability), acceptance_probability=float(probability))
            for draw, probability in zip(draws, probabilities)
        ]

    # -- cost accounting -----------------------------------------------------

    @property
    def rounds(self) -> int:
        """Number of verification rounds (all protocols in the paper use one)."""
        return 1

    def local_proof_qubits(self) -> float:
        """Largest total proof size received by a single node."""
        per_node: Dict[NodeId, float] = {}
        for register in self.proof_registers():
            per_node[register.node] = per_node.get(register.node, 0.0) + register.qubits
        return max(per_node.values()) if per_node else 0.0

    def total_proof_qubits(self) -> float:
        """Total proof size over all nodes."""
        return sum(register.qubits for register in self.proof_registers())

    def message_qubits(self) -> Dict[Tuple[NodeId, NodeId], float]:
        """Qubits sent over each edge during verification.

        Subclasses override :meth:`_messages`; the default derives messages
        from the proof layout (each forwarded register traverses one edge),
        which matches the path and tree protocols of the paper.
        """
        return self._messages()

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        return {}

    def local_message_qubits(self) -> float:
        """Largest number of qubits exchanged over a single edge."""
        messages = self.message_qubits()
        return max(messages.values()) if messages else 0.0

    def total_message_qubits(self) -> float:
        """Total qubits exchanged over all edges."""
        return sum(self.message_qubits().values())

    def cost_summary(self) -> CostSummary:
        """All cost figures of this protocol instance."""
        return CostSummary(
            local_proof=self.local_proof_qubits(),
            total_proof=self.total_proof_qubits(),
            local_message=self.local_message_qubits(),
            total_message=self.total_message_qubits(),
            rounds=self.rounds,
        )

    # -- execution -----------------------------------------------------------

    def run(
        self,
        inputs: Sequence[str],
        proof: Optional[ProductProof] = None,
        rng: RngLike = None,
    ) -> RunResult:
        """One Monte-Carlo run: draws the global accept/reject outcome."""
        generator = ensure_rng(rng)
        probability = self.acceptance_probability(inputs, proof)
        accepted = bool(generator.random() < probability)
        return RunResult(accepted=accepted, acceptance_probability=probability)

    def estimate_acceptance(
        self,
        inputs: Sequence[str],
        proof: Optional[ProductProof] = None,
        shots: int = 200,
        rng: RngLike = None,
    ) -> float:
        """Empirical acceptance frequency over independent runs."""
        generator = ensure_rng(rng)
        hits = sum(1 for _ in range(shots) if self.run(inputs, proof, generator).accepted)
        return hits / shots

    # -- convenience ----------------------------------------------------------

    def completeness_on(self, inputs: Sequence[str]) -> float:
        """Acceptance probability of the honest proof (should be high on yes-instances)."""
        return self.acceptance_probability(inputs, None)

    def validate_proof(self, proof: ProductProof) -> None:
        """Check a proof against this protocol's register layout."""
        proof.validate_against(self.proof_registers())


class RepeatedProtocol(DQMAProtocol):
    """Parallel repetition of a base protocol (the Algorithm 4 pattern).

    The prover supplies ``repetitions`` independent copies of the base proof;
    every node accepts iff it accepts in every copy.  For product proofs the
    acceptance probability is the product of the per-copy probabilities, which
    is exact because distinct copies share no registers.
    """

    def __init__(self, base: DQMAProtocol, repetitions: int):
        if repetitions <= 0:
            raise ProtocolError("number of repetitions must be positive")
        super().__init__(base.problem, base.network)
        self.base = base
        self.repetitions = int(repetitions)

    @staticmethod
    def _copy_name(name: str, copy: int) -> str:
        return f"{name}#rep{copy}"

    def with_noise(self, noise) -> "RepeatedProtocol":
        """Parallel repetition of the noisy sibling (copies stay independent)."""
        repeated = RepeatedProtocol(self.base.with_noise(noise), self.repetitions)
        repeated._engine = self._engine
        return repeated

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        for copy in range(self.repetitions):
            for register in self.base.proof_registers():
                registers.append(
                    ProofRegister(self._copy_name(register.name, copy), register.node, register.dim)
                )
        return registers

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        base_proof = self.base.honest_proof(inputs)
        states = {}
        for copy in range(self.repetitions):
            for name in base_proof.register_names:
                states[self._copy_name(name, copy)] = base_proof.state(name)
        return ProductProof(states)

    def _split_proof(self, proof: ProductProof) -> List[ProductProof]:
        copies = []
        base_names = [register.name for register in self.base.proof_registers()]
        for copy in range(self.repetitions):
            states = {name: proof.state(self._copy_name(name, copy)) for name in base_names}
            copies.append(ProductProof(states))
        return copies

    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> float:
        if proof is None:
            # Honest copies are identical, so one base evaluation suffices;
            # this (with the engine's operator caching underneath) is what
            # keeps the paper's O(r^2)-repetition protocols cheap to run.
            return float(self.base.acceptance_probability(inputs, None) ** self.repetitions)
        copies = self._split_proof(proof)
        probabilities = self.base.acceptance_probabilities(
            [inputs] * self.repetitions, proofs=copies
        )
        return float(np.prod(probabilities))

    def acceptance_probabilities(
        self,
        inputs_batch: Sequence[Sequence[str]],
        proofs: Optional[Sequence[Optional[ProductProof]]] = None,
    ) -> np.ndarray:
        proofs = self._proofs_for_batch(inputs_batch, proofs)
        if all(proof is None for proof in proofs):
            base_probabilities = self.base.acceptance_probabilities(inputs_batch)
            return base_probabilities**self.repetitions
        # Flatten (item, copy) into one base-protocol batch.
        flat_inputs: List[Sequence[str]] = []
        flat_proofs: List[Optional[ProductProof]] = []
        for inputs, proof in zip(inputs_batch, proofs):
            copies = [None] * self.repetitions if proof is None else self._split_proof(proof)
            flat_inputs.extend([inputs] * self.repetitions)
            flat_proofs.extend(copies)
        flat = self.base.acceptance_probabilities(flat_inputs, proofs=flat_proofs)
        return flat.reshape(len(inputs_batch), self.repetitions).prod(axis=1)

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        base_messages = self.base.message_qubits()
        return {edge: qubits * self.repetitions for edge, qubits in base_messages.items()}

    @property
    def rounds(self) -> int:
        return self.base.rounds


def soundness_repetitions(single_shot_gap: float, target_error: float = 1.0 / 3.0) -> int:
    """Number of parallel repetitions needed to push soundness below ``target_error``.

    If one copy accepts a no-instance with probability at most ``1 - gap``,
    ``k`` copies accept with probability at most ``(1 - gap)^k``; the paper
    uses ``k = ceil(2 / gap)`` to reach ``e^{-2} < 1/3`` (Section 3.2).
    """
    if not (0.0 < single_shot_gap <= 1.0):
        raise ProtocolError("single-shot gap must lie in (0, 1]")
    if not (0.0 < target_error < 1.0):
        raise ProtocolError("target error must lie in (0, 1)")
    repetitions = ceil(np.log(target_error) / np.log(max(1.0 - single_shot_gap, 1e-12)))
    return max(int(repetitions), 1)
