"""Reductions from dQMA protocols to two-party QMA* protocols (Algorithm 11).

Splitting the path ``v_0, ..., v_r`` between positions ``i`` and ``i + 1``
turns any dQMA protocol into a QMA* communication protocol: Alice receives the
proofs of ``v_0 .. v_i`` and simulates those nodes, Bob receives the proofs of
``v_{i+1} .. v_r`` and simulates the rest, and the only communication crossing
the cut is the ``m(v_i, v_{i+1})`` qubits of the original protocol.  The
acceptance statistics of the two-party protocol are *identical* to the
original protocol's by construction, so the reduction is entirely about cost
accounting — which is what Theorem 63 combines with the QMA communication
lower bounds of Klauck to obtain dQMA lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.comm.qma import QMAStarCost, qma_cost_from_qma_star
from repro.exceptions import ProtocolError
from repro.network.topology import NodeId
from repro.protocols.base import DQMAProtocol


@dataclass(frozen=True)
class QMAStarReduction:
    """Outcome of the Algorithm 11 reduction at a specific cut."""

    cut_index: int
    alice_nodes: Tuple[NodeId, ...]
    bob_nodes: Tuple[NodeId, ...]
    cost: QMAStarCost

    @property
    def total_cost(self) -> float:
        """The QMA* cost of the reduced protocol."""
        return self.cost.total

    @property
    def qma_cost_bound(self) -> float:
        """Upper bound on the plain QMA cost via inequality (1)."""
        return qma_cost_from_qma_star(self.cost).total


def reduce_dqma_to_qma_star(
    protocol: DQMAProtocol, cut_index: Optional[int] = None
) -> QMAStarReduction:
    """Algorithm 11: reduce a path dQMA protocol to a QMA* communication protocol.

    ``cut_index = i`` places nodes ``v_0 .. v_i`` on Alice's side.  When the
    cut is not specified the cheapest edge (minimum message size) is chosen,
    matching the ``min_j m(v_j, v_{j+1})`` term in the lower-bound statements.
    """
    path_nodes = getattr(protocol, "path_nodes", None)
    if path_nodes is None:
        raise ProtocolError("the QMA* reduction is defined for path protocols")
    path_length = len(path_nodes) - 1
    messages = protocol.message_qubits()

    def edge_message(index: int) -> float:
        forward = (path_nodes[index], path_nodes[index + 1])
        backward = (path_nodes[index + 1], path_nodes[index])
        return messages.get(forward, 0.0) + messages.get(backward, 0.0)

    if cut_index is None:
        cut_index = min(range(path_length), key=edge_message)
    if not (0 <= cut_index < path_length):
        raise ProtocolError(f"cut index {cut_index} out of range for path length {path_length}")

    alice_nodes = tuple(path_nodes[: cut_index + 1])
    bob_nodes = tuple(path_nodes[cut_index + 1 :])
    alice_set = set(alice_nodes)

    alice_proof = 0.0
    bob_proof = 0.0
    for register in protocol.proof_registers():
        if register.node in alice_set:
            alice_proof += register.qubits
        else:
            bob_proof += register.qubits

    cost = QMAStarCost(
        alice_proof_qubits=alice_proof,
        bob_proof_qubits=bob_proof,
        communication_qubits=edge_message(cut_index),
    )
    return QMAStarReduction(
        cut_index=cut_index, alice_nodes=alice_nodes, bob_nodes=bob_nodes, cost=cost
    )


def all_cut_reductions(protocol: DQMAProtocol) -> List[QMAStarReduction]:
    """The Algorithm 11 reduction at every cut of the path."""
    path_nodes = getattr(protocol, "path_nodes", None)
    if path_nodes is None:
        raise ProtocolError("the QMA* reduction is defined for path protocols")
    return [
        reduce_dqma_to_qma_star(protocol, cut_index=index)
        for index in range(len(path_nodes) - 1)
    ]
