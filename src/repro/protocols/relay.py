"""The relay-point protocol for ``EQ`` on long paths (Section 4.1, Algorithm 6).

When the path length ``r`` is comparable to (or larger than) the input length
``n``, the ``O(r^2 log n)`` protocol of Algorithm 3 is beaten by the trivial
classical protocol.  Theorem 22 restores the quantum advantage by inserting
*relay points* every ``ceil(n^(1/3))`` nodes: relay points receive the full
``n``-qubit claimed input, measure it, and the segments between consecutive
relay points (and the extremities) run the fingerprint SWAP-test chain with
enough parallel repetitions to make each segment sound.  The total proof size
becomes ``~O(r n^(2/3))`` qubits versus the classical ``Omega(r n)`` bits.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.problems import EqualityProblem
from repro.exceptions import ProtocolError
from repro.network.spanning_tree import build_verification_tree
from repro.network.topology import Network, NodeId, path_network
from repro.engine import RIGHT_SWAP, ChainJob, ChainNoise, ChainProgram
from repro.protocols.base import DQMAProtocol, ProductProof, ProofRegister
from repro.quantum.channels import NoiseModel
from repro.protocols.chain import chain_acceptance_probability, right_end_swap_operator
from repro.protocols.equality import _ordered_path_nodes
from repro.quantum.fingerprint import ExactCodeFingerprint, FingerprintScheme
from repro.quantum.states import basis_state
from repro.utils.bitstrings import bits_to_int, int_to_bits
from repro.utils.rng import RngLike, ensure_rng


class RelayEqualityProtocol(DQMAProtocol):
    """Algorithm 6: ``EQ`` on a path with relay points every ``ceil(n^(1/3))`` nodes."""

    MAX_EXACT_RELAY_OUTCOMES = 4096

    def __init__(
        self,
        network: Network,
        fingerprints: FingerprintScheme,
        relay_spacing: Optional[int] = None,
        segment_repetitions: Optional[int] = None,
        problem: Optional[EqualityProblem] = None,
        path_nodes: Optional[List[NodeId]] = None,
        noise: Optional[NoiseModel] = None,
    ):
        if problem is None:
            problem = EqualityProblem(fingerprints.input_length, num_inputs=2)
        if problem.input_length != fingerprints.input_length:
            raise ProtocolError("fingerprint scheme and problem disagree on the input length")
        super().__init__(problem, network)
        self.fingerprints = fingerprints
        if path_nodes is None:
            path_nodes = _ordered_path_nodes(network)
        else:
            path_nodes = list(path_nodes)
            if len(path_nodes) < 2:
                raise ProtocolError("a relay path needs at least two nodes")
            if len(set(path_nodes)) != len(path_nodes):
                raise ProtocolError("the relay path must not revisit a node")
            terminals = set(network.terminals)
            if {path_nodes[0], path_nodes[-1]} != terminals:
                raise ProtocolError("the relay path must join the two terminals")
            for left, right in zip(path_nodes, path_nodes[1:]):
                if not network.graph.has_edge(left, right):
                    raise ProtocolError(
                        f"relay path step ({left!r}, {right!r}) is not a network edge"
                    )
        self.path_nodes = path_nodes
        self.path_length = len(self.path_nodes) - 1
        n = problem.input_length
        if relay_spacing is None:
            relay_spacing = max(int(ceil(n ** (1.0 / 3.0))), 1)
        if relay_spacing < 1:
            raise ProtocolError("relay spacing must be at least one edge")
        self.relay_spacing = int(relay_spacing)
        if segment_repetitions is None:
            segment_repetitions = self.paper_segment_repetitions()
        if segment_repetitions < 1:
            raise ProtocolError("segment repetition count must be positive")
        self.segment_repetitions = int(segment_repetitions)
        self.relay_indices = self._relay_indices()
        self.anchor_indices = [0] + self.relay_indices + [self.path_length]
        self.noise = noise
        self._segment_noise = self._build_segment_noise()

    @classmethod
    def on_path(
        cls,
        input_length: int,
        path_length: int,
        relay_spacing: Optional[int] = None,
        segment_repetitions: Optional[int] = None,
        fingerprints: Optional[FingerprintScheme] = None,
        noise: Optional[NoiseModel] = None,
    ) -> "RelayEqualityProtocol":
        """Convenience constructor on the standard path ``v0 .. v_r``."""
        if fingerprints is None:
            fingerprints = ExactCodeFingerprint(input_length)
        return cls(
            path_network(path_length),
            fingerprints,
            relay_spacing=relay_spacing,
            segment_repetitions=segment_repetitions,
            noise=noise,
        )

    def with_noise(self, noise: Optional[NoiseModel]) -> "RelayEqualityProtocol":
        """A sibling protocol with ``noise`` on this relay path (engine shared)."""
        sibling = type(self)(
            self.network,
            self.fingerprints,
            relay_spacing=self.relay_spacing,
            segment_repetitions=self.segment_repetitions,
            problem=self.problem,
            path_nodes=list(self.path_nodes),
            noise=noise,
        )
        sibling._engine = self._engine
        return sibling

    def _build_segment_noise(self) -> List[Optional[ChainNoise]]:
        """The noise model mapped onto each segment's chain (fingerprint legs only).

        The relay registers' computational-basis measurement stays noiseless
        (its outcome distribution is classical); the fingerprint chains
        between consecutive anchors pick up the model's link channels, the
        interior nodes' delivery channels, both anchors' preparation
        channels (the right anchor's applies to the SWAP test's reference
        state) and the readout error of each SWAP test.
        """
        num_segments = len(self.anchor_indices) - 1
        if self.noise is None or self.noise.is_trivial:
            return [None] * num_segments
        annotations: List[Optional[ChainNoise]] = []
        for segment in range(num_segments):
            left_anchor = self.anchor_indices[segment]
            right_anchor = self.anchor_indices[segment + 1]
            edges = tuple(
                self.noise.link_channel(self.path_nodes[i], self.path_nodes[i + 1])
                for i in range(left_anchor, right_anchor)
            )
            nodes = tuple(
                self.noise.node_channel(self.path_nodes[i])
                for i in range(left_anchor + 1, right_anchor)
            )
            annotation = ChainNoise(
                edge_channels=edges,
                node_channels=nodes,
                left_channel=self.noise.node_channel(self.path_nodes[left_anchor]),
                right_channel=self.noise.node_channel(self.path_nodes[right_anchor]),
                readout_error=self.noise.readout_error,
            )
            annotation.validate(
                right_anchor - left_anchor - 1, self.fingerprints.dim, RIGHT_SWAP
            )
            annotations.append(annotation)
        return annotations

    @classmethod
    def on_tree(
        cls,
        network: Network,
        fingerprints: FingerprintScheme,
        relay_spacing: Optional[int] = None,
        segment_repetitions: Optional[int] = None,
        root: Optional[NodeId] = None,
        noise: Optional[NoiseModel] = None,
    ) -> "RelayEqualityProtocol":
        """The relay protocol along a spanning-tree path of a general network.

        For a two-terminal network that is not itself a path (a star, a
        binary tree, a random spanning tree, ...), the protocol runs on the
        verification-tree path joining the terminals — the Section 3.3 tree
        construction with shadow leaves folded back onto physical nodes —
        and compiles to the same chain programs as the path variant.
        """
        if len(network.terminals) != 2:
            raise ProtocolError("the relay protocol joins exactly two terminals")
        first, second = network.terminals
        start = root if root is not None else first
        if start not in (first, second):
            raise ProtocolError("on_tree roots the relay path at a terminal")
        tree = build_verification_tree(network, root=start)
        other = second if start == first else first
        path_nodes = tree.terminal_path(other)
        return cls(
            network,
            fingerprints,
            relay_spacing=relay_spacing,
            segment_repetitions=segment_repetitions,
            path_nodes=path_nodes,
            noise=noise,
        )

    # -- layout --------------------------------------------------------------

    def _relay_indices(self) -> List[int]:
        indices = []
        position = self.relay_spacing
        while position < self.path_length:
            indices.append(position)
            position += self.relay_spacing
        return indices

    def paper_segment_repetitions(self) -> int:
        """The paper's per-node fingerprint count ``42 ceil(n^(1/3))^2``."""
        n = self.problem.input_length
        return int(42 * ceil(n ** (1.0 / 3.0)) ** 2)

    def _relay_register_name(self, index: int) -> str:
        return f"Z[{index}]"

    def _fingerprint_register_name(self, index: int, slot: int, copy: int) -> str:
        return f"R[{index},{slot},{copy}]"

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        relay_dim = 1 << self.problem.input_length
        relay_set = set(self.relay_indices)
        for index in self.relay_indices:
            registers.append(
                ProofRegister(self._relay_register_name(index), self.path_nodes[index], relay_dim)
            )
        for index in range(1, self.path_length):
            if index in relay_set:
                continue
            node = self.path_nodes[index]
            for copy in range(self.segment_repetitions):
                for slot in (0, 1):
                    registers.append(
                        ProofRegister(
                            self._fingerprint_register_name(index, slot, copy),
                            node,
                            self.fingerprints.dim,
                        )
                    )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages = {}
        per_edge = self.segment_repetitions * self.fingerprints.num_qubits
        for index in range(self.path_length):
            edge = (self.path_nodes[index], self.path_nodes[index + 1])
            messages[edge] = per_edge
        return messages

    # -- proofs ---------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        x = inputs[0]
        relay_dim = 1 << self.problem.input_length
        fingerprint = self.fingerprints.state(x)
        states: Dict[str, np.ndarray] = {}
        relay_set = set(self.relay_indices)
        for index in self.relay_indices:
            states[self._relay_register_name(index)] = basis_state(relay_dim, bits_to_int(x))
        for index in range(1, self.path_length):
            if index in relay_set:
                continue
            for copy in range(self.segment_repetitions):
                states[self._fingerprint_register_name(index, 0, copy)] = fingerprint
                states[self._fingerprint_register_name(index, 1, copy)] = fingerprint
        return ProductProof(states)

    # -- acceptance ------------------------------------------------------------

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> ChainProgram:
        """Chain program enumerating the relay measurement outcomes.

        The relay registers are measured in the computational basis; for
        product proofs the joint outcome distribution is a product.  The
        program enumerates the support of that distribution (the honest proof
        has a single outcome per relay) — one term per joint outcome, whose
        job tuple multiplies the chains of every segment and repetition copy.
        Jobs are deduplicated across outcomes sharing anchor strings, so the
        backend contracts each distinct chain once.  Raises when the support
        is too large — use :meth:`estimate_acceptance_sampling` there.
        """
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)

        supports: List[List[Tuple[str, float]]] = []
        total_outcomes = 1
        for index in self.relay_indices:
            amplitudes = proof.state(self._relay_register_name(index))
            probabilities = np.abs(amplitudes) ** 2
            support = [
                (int_to_bits(value, self.problem.input_length), float(p))
                for value, p in enumerate(probabilities)
                if p > 1e-12
            ]
            supports.append(support)
            total_outcomes *= len(support)
        if total_outcomes > self.MAX_EXACT_RELAY_OUTCOMES:
            raise ProtocolError(
                f"relay outcome support of size {total_outcomes} is too large for exact "
                "enumeration; use estimate_acceptance_sampling"
            )

        num_segments = len(self.anchor_indices) - 1
        segment_pairs: Dict[Tuple[int, int], List[Tuple[np.ndarray, np.ndarray]]] = {}
        for segment in range(num_segments):
            left_anchor = self.anchor_indices[segment]
            right_anchor = self.anchor_indices[segment + 1]
            for copy in range(self.segment_repetitions):
                segment_pairs[(segment, copy)] = [
                    (
                        proof.state(self._fingerprint_register_name(index, 0, copy)),
                        proof.state(self._fingerprint_register_name(index, 1, copy)),
                    )
                    for index in range(left_anchor + 1, right_anchor)
                ]

        jobs: List[ChainJob] = []
        job_index: Dict[Tuple[int, int, str, str], int] = {}

        def job_for(segment: int, copy: int, left_string: str, right_string: str) -> int:
            key = (segment, copy, left_string, right_string)
            if key not in job_index:
                job_index[key] = len(jobs)
                jobs.append(
                    ChainJob.from_states(
                        self.fingerprints.state(left_string),
                        segment_pairs[(segment, copy)],
                        self.fingerprints.state(right_string),
                        right_kind=RIGHT_SWAP,
                        noise=self._segment_noise[segment],
                    )
                )
            return job_index[key]

        terms: List[Tuple[float, Tuple[int, ...]]] = []

        def recurse(position: int, joint: float, outcomes: List[str]) -> None:
            if position == len(supports):
                anchor_strings = [inputs[0]] + outcomes + [inputs[1]]
                indices = tuple(
                    job_for(segment, copy, anchor_strings[segment], anchor_strings[segment + 1])
                    for segment in range(num_segments)
                    for copy in range(self.segment_repetitions)
                )
                terms.append((joint, indices))
                return
            for value, probability in supports[position]:
                recurse(position + 1, joint * probability, outcomes + [value])

        recurse(0, 1.0, [])
        return ChainProgram(jobs=tuple(jobs), terms=tuple(terms))

    def estimate_acceptance_sampling(
        self,
        inputs: Sequence[str],
        proof: Optional[ProductProof] = None,
        shots: int = 64,
        rng: RngLike = None,
    ) -> float:
        """Monte-Carlo estimate of the acceptance probability (samples relay outcomes).

        The sampling path evaluates the *noiseless* segment chains: it is the
        large-support escape hatch for entangled relay registers, kept as the
        ideal-protocol reference (``acceptance_probability`` honours the
        noise model through the compiled program).
        """
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        generator = ensure_rng(rng)
        total = 0.0
        for _ in range(shots):
            outcomes = []
            for index in self.relay_indices:
                amplitudes = proof.state(self._relay_register_name(index))
                probabilities = np.abs(amplitudes) ** 2
                probabilities = probabilities / probabilities.sum()
                value = int(generator.choice(len(probabilities), p=probabilities))
                outcomes.append(int_to_bits(value, self.problem.input_length))
            total += self._segments_acceptance(inputs, proof, outcomes)
        return total / shots

    def _segments_acceptance(
        self, inputs: Sequence[str], proof: ProductProof, relay_outcomes: List[str]
    ) -> float:
        """Joint acceptance of all segments, conditioned on the relay measurement results."""
        anchor_strings = [inputs[0]] + list(relay_outcomes) + [inputs[1]]
        probability = 1.0
        for segment in range(len(self.anchor_indices) - 1):
            left_anchor = self.anchor_indices[segment]
            right_anchor = self.anchor_indices[segment + 1]
            left_string = anchor_strings[segment]
            right_string = anchor_strings[segment + 1]
            probability *= self._segment_acceptance(
                proof, left_anchor, right_anchor, left_string, right_string
            )
            if probability == 0.0:
                return 0.0
        return probability

    def _segment_acceptance(
        self,
        proof: ProductProof,
        left_anchor: int,
        right_anchor: int,
        left_string: str,
        right_string: str,
    ) -> float:
        left_state = self.fingerprints.state(left_string)
        right_operator = right_end_swap_operator(self.fingerprints.state(right_string))
        probability = 1.0
        for copy in range(self.segment_repetitions):
            pairs = []
            for index in range(left_anchor + 1, right_anchor):
                pairs.append(
                    (
                        proof.state(self._fingerprint_register_name(index, 0, copy)),
                        proof.state(self._fingerprint_register_name(index, 1, copy)),
                    )
                )
            probability *= chain_acceptance_probability(left_state, pairs, right_operator)
            if probability == 0.0:
                return 0.0
        return probability

    # -- cost accounting ----------------------------------------------------------

    def total_proof_qubits_formula(self) -> float:
        """The paper's count of the total proof size (the displayed sum in Theorem 22)."""
        n = self.problem.input_length
        spacing = self.relay_spacing
        num_relays = len(self.relay_indices)
        fingerprint_block = 2 * self.segment_repetitions * self.fingerprints.num_qubits
        num_plain_nodes = self.path_length - 1 - num_relays
        return num_plain_nodes * fingerprint_block + num_relays * n
