"""Separable-proof conversions (Section 7, Theorems 42/46 and Proposition 47).

Theorem 46: any constant-round dQMA protocol on a path with total cost
``C = sum_j c(v_j) + min_j m(v_j, v_{j+1})`` can be simulated by a *1-round*
``dQMA_sep`` protocol with local proof and message size ``~O(r^2 C^2)``.  The
pipeline is

1. split the path at the cheapest edge and view the two halves as Alice and
   Bob — a QMA* communication protocol of cost ``C`` (Algorithm 11),
2. convert to a plain QMA protocol via inequality (1) (cost at most ``2C``),
3. reduce to a Linear Subspace Distance instance of ambient dimension
   ``m = 2^{O(C)}`` (Lemma 44),
4. solve the LSD instance with the QMA one-way protocol of cost ``O(log m) =
   O(C)`` (Lemma 45),
5. turn that one-way protocol into a dQMA_sep path protocol via Theorem 42.

Steps 1, 2, 4 and 5 are implemented exactly (see
:mod:`repro.protocols.reductions`, :mod:`repro.comm.qma`,
:mod:`repro.comm.lsd`, :mod:`repro.protocols.qma_to_dqma`).  Step 3 — the
Kitaev-style circuit-to-subspace reduction of Raz and Shpilka — is reproduced
at the cost-accounting level (the instance dimension and the resulting
register sizes), and the benchmarks exercise the remainder of the pipeline on
explicitly generated LSD instances with the dimensions the reduction would
produce; DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from repro.comm.lsd import random_lsd_instance
from repro.exceptions import ProtocolError
from repro.protocols.base import CostSummary, DQMAProtocol
from repro.protocols.qma_to_dqma import LSDPathProtocol


@dataclass(frozen=True)
class SeparableConversionCost:
    """Cost bookkeeping of the dQMA → dQMA_sep conversion of Theorem 46."""

    original_cost: float
    path_length: int
    qma_star_cost: float
    qma_cost_bound: float
    lsd_ambient_log_dim: float
    lsd_input_bits: float
    one_way_cost: float
    local_proof_qubits: float
    local_message_qubits: float

    @property
    def overhead_factor(self) -> float:
        """Ratio of the converted local proof size to the original cost."""
        if self.original_cost <= 0:
            return float("inf")
        return self.local_proof_qubits / self.original_cost


def dqma_to_dqmasep_cost(
    cost: CostSummary | float,
    path_length: int,
    repetition_constant: float = 81.0 / 2.0,
) -> SeparableConversionCost:
    """Theorem 46 cost pipeline for a protocol of total cost ``C`` on a path of length ``r``.

    ``cost`` may be a :class:`CostSummary` (in which case ``C`` is the total
    proof size plus the cheapest edge message, as in the theorem statement) or
    the value of ``C`` directly.
    """
    if path_length < 1:
        raise ProtocolError("path length must be at least 1")
    if isinstance(cost, CostSummary):
        messages = cost.local_message  # cheapest-edge proxy when only a summary is given
        total_cost = cost.total_proof + messages
    else:
        total_cost = float(cost)
    if total_cost <= 0:
        raise ProtocolError("protocol cost must be positive")

    qma_star = total_cost
    qma_bound = 2.0 * total_cost  # inequality (1)
    lsd_log_dim = qma_bound  # m = 2^{O(C)}; the exponent constant is 1 in this accounting
    # The LSD input has O(m^2 log m) bits; reported in the log domain to avoid overflow.
    lsd_input_bits = 2.0 * lsd_log_dim + log2(max(lsd_log_dim, 2.0))
    one_way_cost = lsd_log_dim  # Lemma 45: O(log m)
    repetitions = repetition_constant * path_length**2
    # Theorem 42 amplifies the one-way protocol O(log(n' + r)) times where n'
    # is the LSD input size; log2(n') is exactly ``lsd_input_bits``.
    amplification = lsd_input_bits + log2(max(path_length, 2.0))
    local_proof = repetitions * 2.0 * one_way_cost * amplification
    local_message = repetitions * one_way_cost * amplification
    return SeparableConversionCost(
        original_cost=total_cost,
        path_length=path_length,
        qma_star_cost=qma_star,
        qma_cost_bound=qma_bound,
        lsd_ambient_log_dim=lsd_log_dim,
        lsd_input_bits=lsd_input_bits,
        one_way_cost=one_way_cost,
        local_proof_qubits=local_proof,
        local_message_qubits=local_message,
    )


def dqma_to_dqmasep_cost_from_protocol(protocol: DQMAProtocol) -> SeparableConversionCost:
    """Theorem 46 applied to an instantiated path protocol.

    ``C`` is the protocol's total proof size plus its cheapest edge message.
    """
    summary = protocol.cost_summary()
    messages = protocol.message_qubits()
    cheapest_edge = min(messages.values()) if messages else 0.0
    total_cost = summary.total_proof + cheapest_edge
    path_length = getattr(protocol, "path_length", None)
    if path_length is None:
        path_length = max(protocol.network.radius, 1) * 2
    return dqma_to_dqmasep_cost(total_cost, path_length)


def build_sep_protocol_for_parameters(
    ambient_dimension: int,
    subspace_dimension: int,
    path_length: int,
    close: bool,
    rng=None,
) -> LSDPathProtocol:
    """Instantiate the final step of the pipeline on an explicit LSD instance.

    Generates an LSD instance with the requested parameters (standing in for
    the output of the Raz–Shpilka reduction) and wraps it in the Theorem 42
    path protocol, which is a genuine ``dQMA_sep`` protocol.
    """
    instance = random_lsd_instance(ambient_dimension, subspace_dimension, close=close, rng=rng)
    return LSDPathProtocol(instance, path_length)
