"""dQMA protocols for the equality function (Section 3 of the paper).

``EqualityPathProtocol`` implements Algorithm 3 (the single-shot protocol
``P_pi`` on a path with the symmetrization step), and ``EqualityTreeProtocol``
implements Algorithm 5 (the protocol on a general network over the
verification tree, using the permutation test).  Both have perfect
completeness; the single-shot soundness gap is ``4 / (81 r^2)`` (Lemma 17) and
parallel repetition (Algorithm 4, :class:`repro.protocols.base.RepeatedProtocol`)
brings the soundness error below 1/3.

Both protocols accept an optional :class:`~repro.quantum.channels.NoiseModel`
assigning Kraus channels to the network's links (registers in transit) and
nodes (proof delivery / input preparation) plus a measurement readout error;
a non-empty model switches the compiled jobs onto the engine's
density-matrix path.  The entangled-adversary analyses
(:meth:`EqualityPathProtocol.acceptance_operator` and friends) remain
noiseless by design: they characterise the ideal protocol the noisy runs are
compared against.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from itertools import product as iter_product
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.problems import EqualityProblem
from repro.exceptions import ProtocolError, TopologyError
from repro.network.spanning_tree import VerificationTree, build_verification_tree
from repro.network.topology import Network, NodeId, path_network
from repro.protocols.base import (
    DQMAProtocol,
    ProductProof,
    ProofRegister,
    RepeatedProtocol,
    soundness_repetitions,
)
from repro.engine import (
    NODE_FIXED,
    NODE_SYM,
    RIGHT_PROJECTOR,
    TEST_NONE,
    TEST_PERM,
    ChainJob,
    ChainNoise,
    ChainProgram,
    TreeJob,
    TreeJobBuilder,
    TreeProgram,
)
from repro.quantum.channels import NoiseModel
from repro.engine.jobs import MAX_PERM_TEST_ARITY
from repro.protocols.chain import (
    chain_acceptance_operator,
    noisy_chain_acceptance_operator,
    optimal_entangled_acceptance,
)
from repro.quantum.fingerprint import ExactCodeFingerprint, FingerprintScheme
from repro.quantum.permutation_test import permutation_test_accept_probability_product
from repro.quantum.states import outer


def _ordered_path_nodes(network: Network) -> List[NodeId]:
    """The nodes of a path network from one terminal to the other."""
    if len(network.terminals) != 2:
        raise TopologyError("a path protocol needs exactly two terminals")
    left, right = network.terminals
    path = network.shortest_path(left, right)
    if len(path) != network.num_nodes:
        raise TopologyError("the network is not a simple path between its terminals")
    return path


class EqualityPathProtocol(DQMAProtocol):
    """Algorithm 3: the single-shot dQMA protocol ``P_pi`` for ``EQ`` on a path.

    The prover sends two fingerprint registers to every intermediate node; the
    nodes symmetrize, forward one register to the right, SWAP-test the other
    against the incoming register, and the right end applies the fingerprint
    measurement of the one-way protocol ``pi``.
    """

    def __init__(
        self,
        network: Network,
        fingerprints: FingerprintScheme,
        problem: Optional[EqualityProblem] = None,
        noise: Optional[NoiseModel] = None,
    ):
        if problem is None:
            problem = EqualityProblem(fingerprints.input_length, num_inputs=2)
        if problem.input_length != fingerprints.input_length:
            raise ProtocolError("fingerprint scheme and problem disagree on the input length")
        super().__init__(problem, network)
        self.fingerprints = fingerprints
        self.path_nodes = _ordered_path_nodes(network)
        self.path_length = len(self.path_nodes) - 1
        self.noise = noise
        self._chain_noise = self._build_chain_noise()

    # -- layout --------------------------------------------------------------

    @classmethod
    def on_path(
        cls,
        input_length: int,
        path_length: int,
        fingerprints: Optional[FingerprintScheme] = None,
        noise: Optional[NoiseModel] = None,
    ):
        """Convenience constructor on the standard path ``v0 .. v_r``."""
        if fingerprints is None:
            fingerprints = ExactCodeFingerprint(input_length)
        return cls(path_network(path_length), fingerprints, noise=noise)

    def with_noise(self, noise: Optional[NoiseModel]) -> "EqualityPathProtocol":
        """A sibling protocol with ``noise`` mapped onto this path (engine shared).

        The noisy-soundness analyses use this to re-evaluate an existing
        protocol's strategy batches on the engine's density-matrix path
        without re-deriving the layout.
        """
        sibling = type(self)(
            self.network, self.fingerprints, problem=self.problem, noise=noise
        )
        sibling._engine = self._engine
        return sibling

    def _build_chain_noise(self) -> Optional[ChainNoise]:
        """The noise model mapped onto this path's edges and nodes (or ``None``)."""
        if self.noise is None or self.noise.is_trivial:
            return None
        edges = tuple(
            self.noise.link_channel(self.path_nodes[i], self.path_nodes[i + 1])
            for i in range(self.path_length)
        )
        nodes = tuple(
            self.noise.node_channel(self.path_nodes[i])
            for i in range(1, self.path_length)
        )
        annotation = ChainNoise(
            edge_channels=edges,
            node_channels=nodes,
            left_channel=self.noise.node_channel(self.path_nodes[0]),
            right_channel=self.noise.node_channel(self.path_nodes[-1]),
            readout_error=self.noise.readout_error,
        )
        annotation.validate(self.path_length - 1, self.fingerprints.dim, RIGHT_PROJECTOR)
        return annotation

    @property
    def _noise_key(self):
        # Keyed on the *derived* per-edge annotation, not the raw NoiseModel:
        # the same model lands differently on differently-labeled networks,
        # and protocols sharing an engine cache must not exchange programs.
        return None if self._chain_noise is None else self._chain_noise.key

    def _register_name(self, node_index: int, slot: int) -> str:
        return f"R[{node_index},{slot}]"

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        for index in range(1, self.path_length):
            node = self.path_nodes[index]
            for slot in (0, 1):
                registers.append(
                    ProofRegister(self._register_name(index, slot), node, self.fingerprints.dim)
                )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages = {}
        for index in range(self.path_length):
            edge = (self.path_nodes[index], self.path_nodes[index + 1])
            messages[edge] = self.fingerprints.num_qubits
        return messages

    # -- proofs ---------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        fingerprint = self.fingerprints.state(inputs[0])
        states = {}
        for index in range(1, self.path_length):
            states[self._register_name(index, 0)] = fingerprint
            states[self._register_name(index, 1)] = fingerprint
        return ProductProof(states)

    # -- acceptance ------------------------------------------------------------

    def _right_operator(self, y: str) -> np.ndarray:
        """The right end's fingerprint measurement ``|h_y><h_y|`` (engine-cached)."""
        return self.engine.cached_operator(
            ("eq-right", self.fingerprints.cache_token, y),
            lambda: outer(self.fingerprints.state(y)),
        )

    def _honest_job(self, x: str, y: str) -> ChainJob:
        # The honest proof places the (already normalized) fingerprint of x in
        # every register: a broadcast view stands in for the stacked pair
        # array, skipping the ProductProof round-trip entirely.  The right end
        # is the rank-one fingerprint measurement |h_y><h_y|, carried as its
        # defining vector so backends fold it into the chain contraction.
        fingerprint = self.fingerprints.state(x)
        pairs = np.broadcast_to(fingerprint, (self.path_length - 1, 2, fingerprint.size))
        return ChainJob.from_arrays(
            fingerprint,
            pairs,
            self.fingerprints.state(y),
            right_kind=RIGHT_PROJECTOR,
            noise=self._chain_noise,
        )

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> ChainProgram:
        if proof is None:
            # Key on the raw input tuple: a hit implies an identical tuple was
            # validated when the program was first built.
            cache = self.engine.cache
            key = (
                "eq-honest-program",
                self.fingerprints.cache_token,
                self.path_length,
                self._noise_key,
                tuple(inputs),
            )
            program = cache.get(key)
            if program is None:
                inputs = self.problem.validate_inputs(inputs)
                program = cache.put(
                    key, ChainProgram.single(self._honest_job(inputs[0], inputs[1]))
                )
            return program
        else:
            inputs = self.problem.validate_inputs(inputs)
            self.validate_proof(proof)
            node_pairs = [
                (
                    proof.state(self._register_name(index, 0)),
                    proof.state(self._register_name(index, 1)),
                )
                for index in range(1, self.path_length)
            ]
            job = ChainJob.from_states(
                self.fingerprints.state(inputs[0]),
                node_pairs,
                self.fingerprints.state(inputs[1]),
                right_kind=RIGHT_PROJECTOR,
                noise=self._chain_noise,
            )
        return ChainProgram.single(job)

    def acceptance_operator(self, inputs: Sequence[str]) -> np.ndarray:
        """Exact acceptance operator over (possibly entangled) proofs — small instances.

        Cached on the engine's operator cache: soundness sweeps evaluate the
        same layout/input combination many times.
        """
        inputs = self.problem.validate_inputs(inputs)

        def build() -> np.ndarray:
            left_state = self.fingerprints.state(inputs[0])
            return chain_acceptance_operator(
                left_state, self.fingerprints.dim, self.path_length - 1, self._right_operator(inputs[1])
            )

        return self.engine.cached_operator(
            ("eq-chain-operator", self.fingerprints.cache_token, self.path_length, tuple(inputs)),
            build,
        )

    def noisy_acceptance_operator(self, inputs: Sequence[str]) -> np.ndarray:
        """Acceptance operator of the *noisy* protocol (small instances).

        Falls back to :meth:`acceptance_operator` when the protocol carries
        no noise; otherwise the chain's channels are folded into the clean
        operator in the Heisenberg picture (see
        :func:`repro.protocols.chain.noisy_chain_acceptance_operator`), the
        right end's preparation channel acting on its reference projector.
        Its largest eigenvalue is the optimal *entangled* cheating
        probability under the noise model.
        """
        if self._chain_noise is None:
            return self.acceptance_operator(inputs)
        inputs = self.problem.validate_inputs(inputs)

        def build() -> np.ndarray:
            right = outer(self.fingerprints.state(inputs[1]))
            annotation = self._chain_noise
            if annotation.right_channel is not None:
                right = annotation.right_channel.apply(right)
                annotation = dataclass_replace(annotation, right_channel=None)
            return noisy_chain_acceptance_operator(
                self.fingerprints.state(inputs[0]),
                self.fingerprints.dim,
                self.path_length - 1,
                right,
                annotation,
            )

        return self.engine.cached_operator(
            (
                "eq-chain-noisy-operator",
                self.fingerprints.cache_token,
                self.path_length,
                self._noise_key,
                tuple(inputs),
            ),
            build,
        )

    def optimal_cheating_probability(self, inputs: Sequence[str]) -> float:
        """Maximum acceptance over all (entangled) proofs — the soundness supremum."""
        return optimal_entangled_acceptance(self.acceptance_operator(inputs))

    # -- paper parameters -------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """The paper's single-shot rejection-probability bound ``4 / (81 r^2)`` (Lemma 17)."""
        return 4.0 / (81.0 * self.path_length**2)

    def paper_repetitions(self) -> int:
        """The repetition count ``k = ceil(2 * 81 r^2 / 4)`` used in Section 3.2."""
        return int(ceil(2.0 * 81.0 * self.path_length**2 / 4.0))

    def repeated(self, repetitions: Optional[int] = None) -> RepeatedProtocol:
        """Algorithm 4: the parallel repetition ``P_pi[k]`` of this protocol."""
        if repetitions is None:
            repetitions = self.paper_repetitions()
        return RepeatedProtocol(self, repetitions)


class EqualityTreeProtocol(DQMAProtocol):
    """Algorithm 5: ``EQ`` between ``t`` terminals on a general network.

    The protocol runs over the verification tree of Section 3.3: terminals
    prepare their own fingerprints, every non-input node receives two
    fingerprint registers from the prover and symmetrizes them, every non-root
    node forwards one register to its parent, and every non-input node (and
    the root) applies the permutation test to its kept register together with
    everything received from its children.
    """

    MAX_ENUMERATED_NODES = 16

    def __init__(
        self,
        network: Network,
        fingerprints: FingerprintScheme,
        problem: Optional[EqualityProblem] = None,
        root: Optional[NodeId] = None,
        noise: Optional[NoiseModel] = None,
    ):
        if problem is None:
            problem = EqualityProblem(fingerprints.input_length, num_inputs=network.num_terminals)
        if problem.input_length != fingerprints.input_length:
            raise ProtocolError("fingerprint scheme and problem disagree on the input length")
        super().__init__(problem, network)
        self.fingerprints = fingerprints
        self.noise = noise
        self.tree: VerificationTree = build_verification_tree(network, root=root)
        self._input_nodes = set(self.tree.terminal_leaves.values())
        self._terminal_of_input_node = {
            leaf: terminal for terminal, leaf in self.tree.terminal_leaves.items()
        }
        self._proof_nodes = [
            node for node in self.tree.nodes if node not in self._input_nodes
        ]
        self._compile_order = self.tree.topological_order()
        test_arities = [
            1 + len(self.tree.children(node))
            for node in self._compile_order
            if self.tree.children(node)
            and not (node in self._input_nodes and node != self.tree.root)
        ]
        self._max_test_arity = max(test_arities) if test_arities else 0

    # -- layout --------------------------------------------------------------

    def with_noise(self, noise: Optional[NoiseModel]) -> "EqualityTreeProtocol":
        """A sibling protocol with ``noise`` on this network's verification tree."""
        sibling = type(self)(
            self.network,
            self.fingerprints,
            problem=self.problem,
            root=self.tree.root,
            noise=noise,
        )
        sibling._engine = self._engine
        return sibling

    def _register_name(self, node: NodeId, slot: int) -> str:
        return f"R[{node},{slot}]"

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        for node in self._proof_nodes:
            original = self.tree.shadow_of.get(node, node)
            for slot in (0, 1):
                registers.append(
                    ProofRegister(self._register_name(node, slot), original, self.fingerprints.dim)
                )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages: Dict[Tuple[NodeId, NodeId], float] = {}
        for node in self.tree.nodes:
            parent = self.tree.parent(node)
            if parent is None:
                continue
            child_physical = self.tree.shadow_of.get(node, node)
            parent_physical = self.tree.shadow_of.get(parent, parent)
            if child_physical == parent_physical:
                continue  # shadow-leaf messages stay inside the physical node
            edge = (child_physical, parent_physical)
            messages[edge] = messages.get(edge, 0.0) + self.fingerprints.num_qubits
        return messages

    # -- proofs ---------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        fingerprint = self.fingerprints.state(inputs[0])
        states = {}
        for node in self._proof_nodes:
            states[self._register_name(node, 0)] = fingerprint
            states[self._register_name(node, 1)] = fingerprint
        return ProductProof(states)

    # -- acceptance ------------------------------------------------------------

    def _input_of_node(self, node: NodeId, inputs: Sequence[str]) -> str:
        terminal = self._terminal_of_input_node[node]
        terminal_index = list(self.network.terminals).index(terminal)
        return inputs[terminal_index]

    def _compile_tree_job(self, inputs: Sequence[str], register_state) -> TreeJob:
        """Compile one instance to a :class:`TreeJob`.

        ``register_state(node, slot)`` supplies the proof state of a
        non-input node's register; input nodes carry their own fingerprints.
        Every node with children permutation-tests its kept register against
        what its children forward up — Algorithm 5 verbatim, but expressed
        as an engine job instead of a pattern enumeration.

        A non-empty noise model annotates every node with its physical
        link's channel (toward the parent — shadow leaves stay inside their
        physical node and pick up no link noise) and its physical node's
        delivery/preparation channel.
        """
        builder = TreeJobBuilder()
        index_of = {}
        root = self.tree.root
        noise = None if self.noise is None or self.noise.is_trivial else self.noise
        for node in self._compile_order:
            parent = self.tree.parent(node)
            parent_index = -1 if parent is None else index_of[parent]
            has_children = bool(self.tree.children(node))
            up_channel = node_channel = None
            if noise is not None:
                physical = self.tree.shadow_of.get(node, node)
                node_channel = noise.node_channel(physical)
                if parent is not None:
                    parent_physical = self.tree.shadow_of.get(parent, parent)
                    if parent_physical != physical:
                        up_channel = noise.link_channel(physical, parent_physical)
            if node in self._input_nodes:
                tests = TEST_PERM if node == root and has_children else TEST_NONE
                index_of[node] = builder.add_node(
                    parent_index,
                    NODE_FIXED,
                    registers=(self.fingerprints.state(self._input_of_node(node, inputs)),),
                    test=tests,
                    up_channel=up_channel,
                    node_channel=node_channel,
                )
            else:
                index_of[node] = builder.add_node(
                    parent_index,
                    NODE_SYM,
                    registers=(register_state(node, 0), register_state(node, 1)),
                    test=TEST_PERM if has_children else TEST_NONE,
                    up_channel=up_channel,
                    node_channel=node_channel,
                )
        return builder.build(
            readout_error=0.0 if noise is None else noise.readout_error
        )

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> Optional[TreeProgram]:
        if self._max_test_arity > MAX_PERM_TEST_ARITY:
            return None  # oversized fan-out: fall back to the enumerated path
        if proof is None:
            # Key on the raw input tuple: a hit implies an identical tuple was
            # validated when the program was first built.
            cache = self.engine.cache
            key = ("eq-tree-honest-program", self, tuple(inputs))
            program = cache.get(key)
            if program is None:
                inputs = self.problem.validate_inputs(inputs)
                honest = self.fingerprints.state(inputs[0])
                program = cache.put(
                    key,
                    TreeProgram.single(
                        self._compile_tree_job(inputs, lambda node, slot: honest)
                    ),
                )
            return program
        inputs = self.problem.validate_inputs(inputs)
        self.validate_proof(proof)
        job = self._compile_tree_job(
            inputs, lambda node, slot: proof.state(self._register_name(node, slot))
        )
        return TreeProgram.single(job)

    def _scalar_acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> float:
        if self.noise is not None and not self.noise.is_trivial:
            raise ProtocolError(
                "noisy evaluation requires engine-compilable trees; this "
                f"instance exceeds the arity-{MAX_PERM_TEST_ARITY} "
                "permutation-test limit and the enumerated fallback is "
                "noiseless"
            )
        return self.enumerated_acceptance_probability(inputs, proof)

    def enumerated_acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> float:
        """Pre-engine reference semantics: enumerate all symmetrization patterns.

        Exponential in the number of non-input nodes (guarded by
        :attr:`MAX_ENUMERATED_NODES`); kept as the independent cross-check the
        tree-engine parity tests compare against, and as the fallback for
        fan-outs beyond the engine's permutation-test arity limit.
        """
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)

        symmetrized_nodes = [node for node in self._proof_nodes]
        if len(symmetrized_nodes) > self.MAX_ENUMERATED_NODES:
            raise ProtocolError(
                "exact product-proof acceptance enumerates symmetrization patterns; "
                f"the tree has {len(symmetrized_nodes)} non-input nodes which exceeds "
                f"the limit of {self.MAX_ENUMERATED_NODES}"
            )

        root = self.tree.root
        total = 0.0
        patterns = list(iter_product((0, 1), repeat=len(symmetrized_nodes)))
        weight = 1.0 / len(patterns) if patterns else 1.0
        for pattern in patterns:
            bits = dict(zip(symmetrized_nodes, pattern))
            probability = 1.0
            for node in self.tree.nodes:
                is_input = node in self._input_nodes
                if is_input and node != root:
                    continue  # leaves with inputs perform no test
                kept = self._kept_state(node, bits, proof, inputs)
                child_states = [
                    self._sent_state(child, bits, proof, inputs)
                    for child in self.tree.children(node)
                ]
                if not child_states:
                    continue
                states = [kept] + child_states
                probability *= permutation_test_accept_probability_product(states)
                if probability == 0.0:
                    break
            total += weight * probability
        return float(min(max(total, 0.0), 1.0))

    def _kept_state(self, node: NodeId, bits, proof: ProductProof, inputs: Sequence[str]) -> np.ndarray:
        if node in self._input_nodes:
            return self.fingerprints.state(self._input_of_node(node, inputs))
        slot = 0 if bits[node] == 0 else 1
        return proof.state(self._register_name(node, slot))

    def _sent_state(self, node: NodeId, bits, proof: ProductProof, inputs: Sequence[str]) -> np.ndarray:
        if node in self._input_nodes:
            return self.fingerprints.state(self._input_of_node(node, inputs))
        slot = 1 if bits[node] == 0 else 0
        return proof.state(self._register_name(node, slot))

    # -- paper parameters -------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """The ``Omega(1/r^2)`` single-shot gap along the path joining two terminals."""
        depth = max(self.tree.depth, 1)
        return 4.0 / (81.0 * (2 * depth) ** 2)

    def paper_repetitions(self) -> int:
        """Repetition count sufficient for soundness 1/3 (parallel Algorithm 4)."""
        return soundness_repetitions(self.single_shot_soundness_gap())

    def repeated(self, repetitions: Optional[int] = None) -> RepeatedProtocol:
        """The parallel repetition of this protocol."""
        if repetitions is None:
            repetitions = self.paper_repetitions()
        return RepeatedProtocol(self, repetitions)
