"""The symmetrized SWAP-test chain shared by the path protocols.

Algorithm 3 (equality), Algorithm 7 (greater-than, for each index value) and
Algorithm 10 (QMA one-way conversion) all reduce to the same verification
pattern on a path ``v_0, ..., v_r``:

* the left end holds a fixed pure state ``|psi_L>`` (a fingerprint, or the
  state Alice forwards in the QMA protocol),
* every intermediate node ``v_j`` (``j = 1..r-1``) holds two proof registers
  ``(a_j, b_j)`` which it *symmetrizes* (swaps with probability 1/2), keeping
  the first for its own SWAP test and forwarding the second to the right,
* node ``v_j`` SWAP-tests the state forwarded by ``v_{j-1}`` against its kept
  register,
* the right end applies a two-outcome measurement with accept element ``M`` to
  the state forwarded by ``v_{r-1}``.

For product proofs the joint acceptance probability factorises over the
symmetrization pattern into a product of nearest-neighbour terms, so it can be
computed exactly with a transfer-matrix contraction in ``O(r)`` SWAP-test
evaluations — this is what :func:`chain_acceptance_probability` does.

For entangled proofs, :func:`chain_acceptance_operator` constructs the exact
acceptance operator on the proof space (feasible for small register dimension
and path length); its largest eigenvalue is the optimal cheating probability,
realising the supremum in the soundness definition.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError, ProtocolError
from repro.quantum.gates import swap_unitary
from repro.quantum.swap_test import swap_test_accept_probability_pure, swap_test_projector


def _as_ket(state: np.ndarray) -> np.ndarray:
    vec = np.asarray(state, dtype=np.complex128).reshape(-1)
    return vec


def swap_accept_with_operator(state: np.ndarray, operator: np.ndarray) -> float:
    """``<state| M |state>`` for a (sub)normalized ket and an accept operator."""
    vec = _as_ket(state)
    value = float(np.real(np.vdot(vec, operator @ vec)))
    return min(max(value, 0.0), 1.0)


def right_end_swap_operator(own_state: np.ndarray) -> np.ndarray:
    """Accept operator of a right end that SWAP-tests against its own fixed state.

    The SWAP test between an incoming state ``rho`` and the fixed pure state
    ``|phi>`` accepts with probability ``tr(((I + |phi><phi|)/2) rho)``, so the
    right end's behaviour is captured by the operator ``(I + |phi><phi|) / 2``.
    """
    phi = _as_ket(own_state)
    dim = phi.size
    return (np.eye(dim, dtype=np.complex128) + np.outer(phi, np.conj(phi))) / 2.0


def chain_acceptance_probability(
    left_state: np.ndarray,
    node_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    right_accept_operator: np.ndarray,
) -> float:
    """Exact acceptance probability of the symmetrized chain on a product proof.

    Parameters
    ----------
    left_state:
        The pure state prepared by the left end ``v_0``.
    node_pairs:
        For each intermediate node ``v_j`` the pair ``(a_j, b_j)`` of proof
        states in its two registers, in register order (``a_j`` is kept when
        the node does not swap).
    right_accept_operator:
        The right end's POVM accept element on the forwarded register.
    """
    left = _as_ket(left_state)
    pairs = [(_as_ket(a), _as_ket(b)) for a, b in node_pairs]
    operator = np.asarray(right_accept_operator, dtype=np.complex128)
    for a, b in pairs:
        if a.size != left.size or b.size != left.size:
            raise DimensionMismatchError("all chain registers must share one dimension")
    if operator.shape != (left.size, left.size):
        raise DimensionMismatchError("right accept operator has the wrong dimension")

    if not pairs:
        # Path of length 1: the left end's state goes straight to the right end.
        return swap_accept_with_operator(left, operator)

    # weights[s] = joint weight of all symmetrization patterns whose last bit is s,
    # times the product of SWAP-test acceptance probabilities so far.
    # s = 0: node kept a (forwards b); s = 1: node kept b (forwards a).
    first_a, first_b = pairs[0]
    weights = np.array(
        [
            0.5 * swap_test_accept_probability_pure(left, first_a),
            0.5 * swap_test_accept_probability_pure(left, first_b),
        ]
    )
    forwarded = [first_b, first_a]

    for a, b in pairs[1:]:
        new_weights = np.zeros(2)
        for previous in range(2):
            incoming = forwarded[previous]
            new_weights[0] += weights[previous] * 0.5 * swap_test_accept_probability_pure(incoming, a)
            new_weights[1] += weights[previous] * 0.5 * swap_test_accept_probability_pure(incoming, b)
        weights = new_weights
        forwarded = [b, a]

    probability = 0.0
    for previous in range(2):
        probability += weights[previous] * swap_accept_with_operator(forwarded[previous], operator)
    return float(min(max(probability, 0.0), 1.0))


def chain_acceptance_probability_factored(
    left_factors: Sequence[np.ndarray],
    node_pairs: Sequence[Tuple[Sequence[np.ndarray], Sequence[np.ndarray]]],
    right_accept_from_factors,
) -> float:
    """Chain acceptance when every register is a tensor product of factors.

    Used by the protocols built on one-way protocols with many-factor messages
    (e.g. the Hamming sketch protocol), where materialising the full message
    state is infeasible.  SWAP tests between product states factorise:
    ``P = 1/2 + (1/2) prod_i |<a_i|b_i>|^2``.  The right end's acceptance is
    computed by the supplied callable ``right_accept_from_factors(factors)``.
    """
    left = [ _as_ket(f) for f in left_factors ]
    pairs = [([_as_ket(f) for f in a], [_as_ket(f) for f in b]) for a, b in node_pairs]

    def swap_product(first: Sequence[np.ndarray], second: Sequence[np.ndarray]) -> float:
        if len(first) != len(second):
            raise DimensionMismatchError("factor counts differ between chain registers")
        overlap_sq = 1.0
        for f, g in zip(first, second):
            overlap_sq *= float(abs(np.vdot(f, g)) ** 2)
        return 0.5 + 0.5 * overlap_sq

    if not pairs:
        return float(min(max(right_accept_from_factors(left), 0.0), 1.0))

    first_a, first_b = pairs[0]
    weights = np.array([0.5 * swap_product(left, first_a), 0.5 * swap_product(left, first_b)])
    forwarded = [first_b, first_a]
    for a, b in pairs[1:]:
        new_weights = np.zeros(2)
        for previous in range(2):
            incoming = forwarded[previous]
            new_weights[0] += weights[previous] * 0.5 * swap_product(incoming, a)
            new_weights[1] += weights[previous] * 0.5 * swap_product(incoming, b)
        weights = new_weights
        forwarded = [b, a]
    probability = 0.0
    for previous in range(2):
        probability += weights[previous] * float(right_accept_from_factors(forwarded[previous]))
    return float(min(max(probability, 0.0), 1.0))


def chain_acceptance_operator(
    left_state: np.ndarray,
    register_dim: int,
    num_intermediate: int,
    right_accept_operator: np.ndarray,
) -> np.ndarray:
    """The exact acceptance operator of the chain on the proof space.

    The proof space is the tensor product of the ``2 * num_intermediate``
    registers ``(a_1, b_1, ..., a_{r-1}, b_{r-1})`` in that order, each of
    dimension ``register_dim``.  The returned Hermitian operator ``E``
    satisfies ``P[all accept | proof rho] = tr(E rho)`` for *any* proof,
    entangled or not; its largest eigenvalue is the optimal cheating
    probability.

    The construction follows the protocol literally: the acceptance projector
    for the no-swap pattern is a tensor product of SWAP-test projectors on the
    interleaved pairs, and the symmetrization step is the uniform mixture over
    the ``2^{r-1}`` swap patterns.  Memory grows as
    ``register_dim^(2 * num_intermediate + 1)``, so this is intended for the
    small instances used in the soundness experiments.
    """
    left = _as_ket(left_state)
    dim = int(register_dim)
    if left.size != dim:
        raise DimensionMismatchError("left state dimension must equal the register dimension")
    operator = np.asarray(right_accept_operator, dtype=np.complex128)
    if operator.shape != (dim, dim):
        raise DimensionMismatchError("right accept operator has the wrong dimension")
    if num_intermediate < 0:
        raise ProtocolError("number of intermediate nodes must be non-negative")
    if num_intermediate == 0:
        # No proof registers; acceptance is a scalar.
        return np.array([[swap_accept_with_operator(left, operator)]], dtype=np.complex128)

    total_registers = 2 * num_intermediate + 1  # left register + proof registers
    total_dim = dim**total_registers
    if total_dim > 4096:
        raise ProtocolError(
            f"chain acceptance operator would have dimension {total_dim}; "
            "restrict to smaller instances (the memory and time costs grow as "
            "the cube of this dimension)"
        )

    swap_projector = swap_test_projector(dim)
    swap = swap_unitary(dim)
    eye_pair = np.eye(dim * dim, dtype=np.complex128)
    eye_single = np.eye(dim, dtype=np.complex128)

    # Accept projector for the identity (no-swap) pattern: SWAP-test projectors
    # on the interleaved pairs (L, a_1), (b_1, a_2), ..., (b_{r-2}, a_{r-1})
    # and the right end operator on b_{r-1}.  In the register order
    # (L, a_1, b_1, a_2, b_2, ..., a_{r-1}, b_{r-1}) these blocks are adjacent
    # and non-overlapping, so the projector is a plain Kronecker product.
    accept_base = np.array([[1.0 + 0.0j]])
    for _ in range(num_intermediate):
        accept_base = np.kron(accept_base, swap_projector)
    accept_base = np.kron(accept_base, operator)

    # Symmetrization pattern unitaries: a SWAP (or identity) on each pair
    # (a_j, b_j), which in the same register order are also adjacent blocks,
    # offset by the single left register.
    full = np.zeros((total_dim, total_dim), dtype=np.complex128)
    for pattern in iter_product((0, 1), repeat=num_intermediate):
        unitary = np.array([[1.0 + 0.0j]])
        unitary = np.kron(unitary, eye_single)
        for bit in pattern:
            unitary = np.kron(unitary, swap if bit else eye_pair)
        full += unitary.conj().T @ accept_base @ unitary
    full /= 2**num_intermediate

    # Contract the fixed left register with |psi_L>.
    proof_dim = dim ** (2 * num_intermediate)
    tensor = full.reshape(dim, proof_dim, dim, proof_dim)
    reduced = np.einsum("i,ijbk,b->jk", np.conj(left), tensor, left)
    return reduced


def _compose_channels(first, second):
    """``second`` after ``first`` where either may be ``None`` (identity)."""
    if first is None:
        return second
    if second is None:
        return first
    return first.then(second)


def noisy_chain_acceptance_operator(
    left_state: np.ndarray,
    register_dim: int,
    num_intermediate: int,
    right_accept_operator: np.ndarray,
    noise,
) -> np.ndarray:
    """The exact acceptance operator of the *noisy* chain on the proof space.

    Same proof space and register order as :func:`chain_acceptance_operator`,
    but every register passes its :class:`~repro.engine.jobs.ChainNoise`
    channels before the tests and every test outcome is flipped with the
    annotation's readout error: per symmetrization pattern the clean pattern
    projector is replaced by a tensor product of *flipped* accept elements
    (``(1-2e) P + e I`` per SWAP test, likewise for the right measurement)
    and conjugated by the adjoint of each register's channel chain — the
    Heisenberg picture of the engine's density-matrix evaluation, so
    ``tr(E rho)`` matches the scalar Kraus-sum reference on every product
    proof while remaining valid for entangled ones.

    ``right_accept_operator`` is the right end's accept element *after*
    reference preparation; fold any ``right_channel`` into it before calling
    (the operator acts on the incoming register, so preparation noise of the
    reference state cannot be applied here).
    """
    from repro.quantum.channels import apply_channels_adjoint, flip_probability

    left = _as_ket(left_state)
    dim = int(register_dim)
    if left.size != dim:
        raise DimensionMismatchError("left state dimension must equal the register dimension")
    operator = np.asarray(right_accept_operator, dtype=np.complex128)
    if operator.shape != (dim, dim):
        raise DimensionMismatchError("right accept operator has the wrong dimension")
    if num_intermediate < 0:
        raise ProtocolError("number of intermediate nodes must be non-negative")
    noise.validate(num_intermediate, dim)
    if noise.right_channel is not None:
        raise ProtocolError(
            "fold the right end's preparation channel into the accept element "
            "before building the noisy acceptance operator"
        )
    error = noise.readout_error
    left_chain = _compose_channels(noise.left_channel, noise.edge_channels[0])

    if num_intermediate == 0:
        rho = np.outer(left, np.conj(left))
        if left_chain is not None:
            rho = left_chain.apply(rho)
        accept = float(np.trace(operator @ rho).real)
        return np.array([[flip_probability(accept, error)]], dtype=np.complex128)

    total_registers = 2 * num_intermediate + 1
    total_dim = dim**total_registers
    if total_dim > 4096:
        raise ProtocolError(
            f"noisy chain acceptance operator would have dimension {total_dim}; "
            "restrict to smaller instances (the memory and time costs grow as "
            "the cube of this dimension)"
        )

    swap = swap_unitary(dim)
    eye_pair = np.eye(dim * dim, dtype=np.complex128)
    eye_single = np.eye(dim, dtype=np.complex128)
    flipped_swap = (1.0 - 2.0 * error) * swap_test_projector(dim) + error * eye_pair
    flipped_right = (1.0 - 2.0 * error) * operator + error * eye_single

    accept_base = np.array([[1.0 + 0.0j]])
    for _ in range(num_intermediate):
        accept_base = np.kron(accept_base, flipped_swap)
    accept_base = np.kron(accept_base, flipped_right)

    dims = [dim] * total_registers
    full = np.zeros((total_dim, total_dim), dtype=np.complex128)
    for pattern in iter_product((0, 1), repeat=num_intermediate):
        unitary = np.array([[1.0 + 0.0j]])
        unitary = np.kron(unitary, eye_single)
        for bit in pattern:
            unitary = np.kron(unitary, swap if bit else eye_pair)
        conjugated = unitary.conj().T @ accept_base @ unitary
        # Physical register order (L, a_1, b_1, ..., a_m, b_m): node j's
        # delivery channel hits both of its registers, the forwarded one
        # (slot 1 when the pattern keeps slot 0, and vice versa) additionally
        # crosses the next edge; the left register always crosses edge 0.
        channels = [left_chain]
        for index, bit in enumerate(pattern):
            kept = noise.node_channels[index]
            forwarded = _compose_channels(kept, noise.edge_channels[index + 1])
            channels += [forwarded, kept] if bit else [kept, forwarded]
        full += apply_channels_adjoint(conjugated, dims, channels)
    full /= 2**num_intermediate

    proof_dim = dim ** (2 * num_intermediate)
    tensor = full.reshape(dim, proof_dim, dim, proof_dim)
    return np.einsum("i,ijbk,b->jk", np.conj(left), tensor, left)


def optimal_entangled_acceptance(acceptance_operator: np.ndarray) -> float:
    """Largest eigenvalue of an acceptance operator: the optimal cheating probability."""
    operator = np.asarray(acceptance_operator, dtype=np.complex128)
    hermitian = (operator + operator.conj().T) / 2
    eigenvalues = np.linalg.eigvalsh(hermitian)
    return float(min(max(eigenvalues[-1].real, 0.0), 1.0))
