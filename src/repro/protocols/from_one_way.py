"""dQMA protocols built from one-way communication protocols (Section 6, Algorithm 9).

Given any two-party predicate ``f`` with an efficient one-way quantum protocol
and a network with ``t`` terminals, Theorem 32 builds a dQMA protocol for
``∀_t f`` by running, for every terminal ``u_j``, a verification tree rooted at
``u_j``: the root prepares its one-way message ``|psi(x_j)>`` and sends a copy
towards every leaf through a chain of SWAP tests maintained by the
intermediate nodes (each of which receives one register per child plus one
from the prover and permutes them uniformly at random), and every leaf applies
Bob's measurement with its own input.  Theorem 30 (the Hamming distance
protocol) is the instantiation with the Hamming one-way protocol.
"""

from __future__ import annotations

from itertools import permutations as iter_permutations
from itertools import product as iter_product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.one_way import ExactMaskHammingOneWay, HammingSketchOneWay, OneWayProtocol
from repro.comm.problems import ForAllPairsProblem, HammingDistanceProblem, Problem
from repro.engine import (
    NODE_FIXED,
    NODE_ROUTER,
    TEST_FANOUT,
    TEST_NONE,
    TreeJob,
    TreeJobBuilder,
    TreeProgram,
)
from repro.engine.jobs import MAX_ROUTER_REGISTERS
from repro.exceptions import ProtocolError
from repro.network.spanning_tree import VerificationTree, build_verification_tree
from repro.network.topology import Network, NodeId, star_network
from repro.protocols.base import (
    DQMAProtocol,
    ProductProof,
    ProofRegister,
    RepeatedProtocol,
    soundness_repetitions,
)


class OneWayToTreeProtocol(DQMAProtocol):
    """Algorithm 9 generalised: a dQMA protocol for ``∀_t f`` from a one-way protocol.

    Proof registers are indexed by (tree, node, slot): for tree ``j`` each
    internal non-root node with ``delta`` children receives ``delta + 1``
    message-sized registers.  Message registers are manipulated as lists of
    tensor factors so that one-way protocols with many-factor messages (the
    Hamming sketches) never materialise their full product state.

    Each verification tree compiles to an engine
    :class:`~repro.engine.jobs.TreeJob` (router nodes, SWAP tests down the
    edges, the one-way measurement at the terminal leaves); the acceptance
    program multiplies the ``t`` tree jobs.  Instances whose fan-out exceeds
    the engine's per-node assignment limit — or whose one-way protocol cannot
    describe its measurement as a
    :class:`~repro.engine.jobs.MeasurementSpec` — fall back to the exact
    joint-pattern enumeration (:meth:`enumerated_acceptance_probability`).
    """

    MAX_ENUMERATED_PERMUTATION_PATTERNS = 5000

    def __init__(
        self,
        problem: Problem,
        network: Network,
        one_way: OneWayProtocol,
    ):
        super().__init__(problem, network)
        if one_way.input_length != problem.input_length:
            raise ProtocolError("one-way protocol input length does not match the problem")
        self.one_way = one_way
        #: Fingerprint scheme behind the one-way messages, when there is one
        #: (lets the generic fingerprint-strategy soundness search run).
        self.fingerprints = getattr(one_way, "fingerprints", None)
        self.trees: Dict[int, VerificationTree] = {}
        for index, terminal in enumerate(network.terminals):
            self.trees[index] = build_verification_tree(network, root=terminal)
        self._orders = {index: tree.topological_order() for index, tree in self.trees.items()}
        self._max_router_bundle = max(
            (
                len(tree.children(node)) + 1
                for index, tree in self.trees.items()
                for node in self._internal_nodes(tree)
            ),
            default=0,
        )

    # -- layout ----------------------------------------------------------------

    def _register_name(self, tree_index: int, node: NodeId, slot: int, factor: int) -> str:
        return f"T[{tree_index}]:{node}:{slot}:{factor}"

    def _internal_nodes(self, tree: VerificationTree) -> List[NodeId]:
        internal = []
        for node in tree.nodes:
            if node == tree.root:
                continue
            if tree.is_leaf(node):
                continue
            internal.append(node)
        return internal

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        factor_dims = self.one_way.factor_dims
        for tree_index, tree in self.trees.items():
            for node in self._internal_nodes(tree):
                physical = tree.shadow_of.get(node, node)
                num_children = len(tree.children(node))
                for slot in range(num_children + 1):
                    for factor, dim in enumerate(factor_dims):
                        registers.append(
                            ProofRegister(
                                self._register_name(tree_index, node, slot, factor), physical, dim
                            )
                        )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages: Dict[Tuple[NodeId, NodeId], float] = {}
        per_message = self.one_way.message_qubits
        for tree in self.trees.values():
            for node in tree.nodes:
                parent = tree.parent(node)
                if parent is None:
                    continue
                child_physical = tree.shadow_of.get(node, node)
                parent_physical = tree.shadow_of.get(parent, parent)
                if child_physical == parent_physical:
                    continue
                edge = (parent_physical, child_physical)
                messages[edge] = messages.get(edge, 0.0) + per_message
        return messages

    # -- proofs -------------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        states: Dict[str, np.ndarray] = {}
        for tree_index, tree in self.trees.items():
            root_input = inputs[tree_index]
            factors = self.one_way.message_factors(root_input)
            for node in self._internal_nodes(tree):
                num_children = len(tree.children(node))
                for slot in range(num_children + 1):
                    for factor_index, factor in enumerate(factors):
                        states[self._register_name(tree_index, node, slot, factor_index)] = factor
        return ProductProof(states)

    # -- acceptance ------------------------------------------------------------------

    def _measurement_spec(self, y: str):
        """Bob's leaf measurement for input ``y`` (engine-cached per input)."""
        return self.engine.cached_operator(
            ("one-way-accept-spec", self.one_way.cache_token, y),
            lambda: self.one_way.accept_measurement_spec(y),
        )

    def _compile_tree_job(
        self, tree_index: int, inputs: Sequence[str], proof: ProductProof
    ) -> Optional[TreeJob]:
        """One verification tree as an engine :class:`TreeJob`.

        The root is a fixed node holding Alice's message, internal nodes are
        routers over their ``delta + 1`` proof registers, terminal leaves
        carry Bob's measurement; SWAP tests follow the tree edges downwards
        (``TEST_FANOUT``).  Returns ``None`` when a leaf measurement cannot
        be described — the caller then falls back to the enumerated path.
        """
        tree = self.trees[tree_index]
        terminal_of_leaf = {leaf: term for term, leaf in tree.terminal_leaves.items()}
        terminal_index = {term: i for i, term in enumerate(self.network.terminals)}
        builder = TreeJobBuilder(num_factors=len(self.one_way.factor_dims))
        index_of: Dict[NodeId, int] = {}
        for node in self._orders[tree_index]:
            parent = tree.parent(node)
            parent_index = -1 if parent is None else index_of[parent]
            children = tree.children(node)
            if node == tree.root:
                root_register = tuple(self.one_way.message_factors(inputs[tree_index]))
                index_of[node] = builder.add_node(
                    -1,
                    NODE_FIXED,
                    registers=(root_register,),
                    test=TEST_FANOUT if children else TEST_NONE,
                )
            elif children:
                registers = tuple(
                    tuple(self._register_factors(proof, tree_index, node, slot))
                    for slot in range(len(children) + 1)
                )
                index_of[node] = builder.add_node(
                    parent_index, NODE_ROUTER, registers=registers, test=TEST_FANOUT
                )
            else:
                terminal = terminal_of_leaf.get(node)
                spec = None
                if terminal is not None:
                    spec = self._measurement_spec(inputs[terminal_index[terminal]])
                    if spec is None:
                        return None
                index_of[node] = builder.add_node(
                    parent_index, NODE_FIXED, test=TEST_NONE, measurement=spec
                )
        return builder.build()

    def _compile_program(
        self, inputs: Sequence[str], proof: ProductProof
    ) -> Optional[TreeProgram]:
        jobs = []
        for tree_index in self.trees:
            job = self._compile_tree_job(tree_index, inputs, proof)
            if job is None:
                return None
            jobs.append(job)
        return TreeProgram(
            jobs=tuple(jobs), terms=((1.0, tuple(range(len(jobs)))),)
        )

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> Optional[TreeProgram]:
        if self._max_router_bundle > MAX_ROUTER_REGISTERS:
            return None  # oversized fan-out: fall back to the enumerated path
        if proof is None:
            cache = self.engine.cache
            key = ("ow-tree-honest-program", self, tuple(inputs))
            program = cache.get(key)
            if program is None:
                inputs = self.problem.validate_inputs(inputs)
                program = self._compile_program(inputs, self.honest_proof(inputs))
                if program is not None:
                    cache.put(key, program)
            return program
        inputs = self.problem.validate_inputs(inputs)
        self.validate_proof(proof)
        return self._compile_program(inputs, proof)

    def _scalar_acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> float:
        return self.enumerated_acceptance_probability(inputs, proof)

    def enumerated_acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> float:
        """Pre-engine reference semantics: enumerate the joint assignment space.

        Exponential in the number of internal nodes (guarded by
        :attr:`MAX_ENUMERATED_PERMUTATION_PATTERNS`); kept as the independent
        cross-check for the tree-engine parity tests and as the fallback for
        instances the compiler rejects.
        """
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)
        probability = 1.0
        for tree_index in self.trees:
            probability *= self._tree_acceptance(tree_index, inputs, proof)
            if probability == 0.0:
                return 0.0
        return float(min(max(probability, 0.0), 1.0))

    def _register_factors(
        self, proof: ProductProof, tree_index: int, node: NodeId, slot: int
    ) -> List[np.ndarray]:
        return [
            proof.state(self._register_name(tree_index, node, slot, factor))
            for factor in range(len(self.one_way.factor_dims))
        ]

    @staticmethod
    def _swap_accept_factored(first: Sequence[np.ndarray], second: Sequence[np.ndarray]) -> float:
        overlap_sq = 1.0
        for f, g in zip(first, second):
            overlap_sq *= float(abs(np.vdot(f, g)) ** 2)
        return 0.5 + 0.5 * overlap_sq

    def _tree_acceptance(
        self, tree_index: int, inputs: Sequence[str], proof: ProductProof
    ) -> float:
        tree = self.trees[tree_index]
        root_input = inputs[tree_index]
        root_factors = self.one_way.message_factors(root_input)
        internal_nodes = self._internal_nodes(tree)

        # Each internal node draws a uniformly random assignment of its
        # delta + 1 registers to the slots (child_1, ..., child_delta, keep);
        # enumerate the joint assignment space exactly.
        assignment_spaces: List[List[Tuple[int, ...]]] = []
        for node in internal_nodes:
            size = len(tree.children(node)) + 1
            assignment_spaces.append(list(iter_permutations(range(size))))
        total_patterns = 1
        for space in assignment_spaces:
            total_patterns *= len(space)
        if total_patterns > self.MAX_ENUMERATED_PERMUTATION_PATTERNS:
            raise ProtocolError(
                f"permutation pattern space of size {total_patterns} is too large for "
                "exact enumeration; reduce the tree fan-out"
            )

        terminal_of_leaf = {leaf: term for term, leaf in tree.terminal_leaves.items()}
        terminal_index = {term: i for i, term in enumerate(self.network.terminals)}

        def incoming_factors(
            node: NodeId, assignment: Dict[NodeId, Tuple[int, ...]]
        ) -> List[np.ndarray]:
            """The register sent to ``node`` by its parent under ``assignment``."""
            parent = tree.parent(node)
            if parent == tree.root or parent is None:
                return root_factors
            perm = assignment[parent]
            child_position = tree.children(parent).index(node)
            slot = perm[child_position]
            return self._register_factors(proof, tree_index, parent, slot)

        total = 0.0
        weight = 1.0 / total_patterns if total_patterns else 1.0
        for pattern in iter_product(*assignment_spaces) if assignment_spaces else [()]:
            assignment = dict(zip(internal_nodes, pattern))
            probability = 1.0

            for node in tree.nodes:
                if node == tree.root:
                    continue
                received = incoming_factors(node, assignment)
                if tree.is_leaf(node):
                    terminal = terminal_of_leaf.get(node)
                    if terminal is None:
                        # A non-terminal leaf performs no measurement.
                        continue
                    leaf_input = inputs[terminal_index[terminal]]
                    probability *= self.one_way.accept_probability_factors(received, leaf_input)
                else:
                    perm = assignment[node]
                    keep_slot = perm[len(tree.children(node))]
                    kept = self._register_factors(proof, tree_index, node, keep_slot)
                    probability *= self._swap_accept_factored(received, kept)
                if probability == 0.0:
                    break
            total += weight * probability
        return float(min(max(total, 0.0), 1.0))

    # -- paper parameters ----------------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """The ``Omega(1/r^2)`` gap along the worst root-to-leaf path."""
        depth = max(max(tree.depth for tree in self.trees.values()), 1)
        return 4.0 / (81.0 * (depth + 1) ** 2)

    def paper_repetitions(self) -> int:
        """The paper's ``k = 42 r^2`` repetition count (Theorem 30)."""
        radius = max(self.network.radius, 1)
        return int(42 * radius**2)

    def repeated(self, repetitions: Optional[int] = None) -> RepeatedProtocol:
        """Parallel repetition of the protocol (the Step-7 loop of Algorithm 9)."""
        if repetitions is None:
            repetitions = soundness_repetitions(self.single_shot_soundness_gap())
        return RepeatedProtocol(self, repetitions)


def hamming_distance_protocol(
    input_length: int,
    distance_bound: int,
    num_terminals: int,
    network: Optional[Network] = None,
    one_way: Optional[OneWayProtocol] = None,
    exact: bool = True,
    num_sketches: int = 40,
) -> OneWayToTreeProtocol:
    """Theorem 30: the dQMA protocol for ``HAM^{<=d}_{t,n}`` on a network.

    Defaults to a star network with the terminals at the leaves.  With
    ``exact=True`` (the default) the one-way subroutine is the erase-mask
    protocol with perfect completeness; with ``exact=False`` it is the
    lighter sketch-based protocol (bounded two-sided error).
    """
    if network is None:
        network = star_network(num_terminals)
    if one_way is None:
        if exact:
            one_way = ExactMaskHammingOneWay(input_length, distance_bound)
        else:
            one_way = HammingSketchOneWay(input_length, distance_bound, num_sketches=num_sketches)
    problem = HammingDistanceProblem(input_length, distance_bound, num_terminals)
    return OneWayToTreeProtocol(problem, network, one_way)


def forall_pairs_protocol(
    base_problem,
    one_way: OneWayProtocol,
    num_terminals: int,
    network: Optional[Network] = None,
) -> OneWayToTreeProtocol:
    """Theorem 32: the dQMA protocol for ``∀_t f`` from a one-way protocol for ``f``."""
    if network is None:
        network = star_network(num_terminals)
    problem = ForAllPairsProblem(base_problem, num_terminals)
    return OneWayToTreeProtocol(problem, network, one_way)
