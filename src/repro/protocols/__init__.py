"""dQMA protocol library — the paper's primary contribution, as executable code.

Every protocol of the paper is implemented as a class that

* declares the proof registers the prover must supply (and their sizes),
* produces the honest proof for yes-instances,
* computes the exact acceptance probability for arbitrary product proofs
  (and, for the path protocols on small instances, for arbitrary entangled
  proofs via the acceptance operator),
* reports its cost both as the actual simulated register sizes and as the
  paper's asymptotic formulas (see :mod:`repro.bounds`).

Protocols
---------
* :class:`EqualityPathProtocol` — Algorithm 3 (single shot) / Algorithm 4
  (parallel repetition) for ``EQ`` on a path.
* :class:`EqualityTreeProtocol` — Algorithm 5 for ``EQ`` on general graphs,
  using the permutation test.
* :class:`Fgnp21EqualityProtocol` — the baseline protocol of FGNP21.
* :class:`RelayEqualityProtocol` — Algorithm 6 (relay points, Theorem 22).
* :class:`GreaterThanPathProtocol` — Algorithm 7 (Theorem 26).
* :class:`RankingVerificationProtocol` — Algorithm 8 (Theorem 29).
* :class:`OneWayToTreeProtocol` — Algorithm 9 / Theorem 32 (Hamming distance
  and any ``∀_t f`` with an efficient one-way protocol).
* :class:`QMAOneWayToPathProtocol` — Algorithm 10 / Theorem 42.
* :class:`TrivialEqualityDMA`, :class:`TruncationEqualityDMA` — classical
  baselines used by the Section 4 comparison.
"""

from repro.protocols.applications import (
    l1_graph_distance_protocol,
    ltf_xor_protocol,
    matrix_rank_protocol,
    vector_l1_distance_protocol,
)
from repro.protocols.base import (
    CostSummary,
    DQMAProtocol,
    ProductProof,
    ProofRegister,
    RepeatedProtocol,
    RunResult,
)
from repro.protocols.locc import (
    LOCCConversionCost,
    corollary21_local_message_bound,
    corollary21_local_proof_bound,
    locc_conversion_cost,
)
from repro.protocols.transcript import (
    NodeVerdict,
    RunTranscript,
    empirical_acceptance_from_transcripts,
    rejection_histogram,
    simulate_equality_path_run,
)
from repro.protocols.dma import TrivialEqualityDMA, TruncationEqualityDMA
from repro.protocols.equality import EqualityPathProtocol, EqualityTreeProtocol
from repro.protocols.fgnp21 import Fgnp21EqualityProtocol
from repro.protocols.from_one_way import OneWayToTreeProtocol, hamming_distance_protocol
from repro.protocols.greater_than import GreaterThanPathProtocol
from repro.protocols.qma_to_dqma import LSDPathProtocol, QMAOneWayToPathProtocol
from repro.protocols.ranking import RankingVerificationProtocol
from repro.protocols.relay import RelayEqualityProtocol
from repro.protocols.separable import SeparableConversionCost, dqma_to_dqmasep_cost
from repro.protocols.reductions import QMAStarReduction, reduce_dqma_to_qma_star

__all__ = [
    "l1_graph_distance_protocol",
    "ltf_xor_protocol",
    "matrix_rank_protocol",
    "vector_l1_distance_protocol",
    "LOCCConversionCost",
    "corollary21_local_message_bound",
    "corollary21_local_proof_bound",
    "locc_conversion_cost",
    "NodeVerdict",
    "RunTranscript",
    "empirical_acceptance_from_transcripts",
    "rejection_histogram",
    "simulate_equality_path_run",
    "CostSummary",
    "DQMAProtocol",
    "ProductProof",
    "ProofRegister",
    "RepeatedProtocol",
    "RunResult",
    "TrivialEqualityDMA",
    "TruncationEqualityDMA",
    "EqualityPathProtocol",
    "EqualityTreeProtocol",
    "Fgnp21EqualityProtocol",
    "OneWayToTreeProtocol",
    "hamming_distance_protocol",
    "GreaterThanPathProtocol",
    "LSDPathProtocol",
    "QMAOneWayToPathProtocol",
    "RankingVerificationProtocol",
    "RelayEqualityProtocol",
    "SeparableConversionCost",
    "dqma_to_dqmasep_cost",
    "QMAStarReduction",
    "reduce_dqma_to_qma_star",
]
