"""The baseline dQMA protocol for ``EQ`` of Fraigniaud, Le Gall, Nishimura and Paz.

This is the protocol the paper improves upon (referenced as [FGNP21]): the
prover sends a *single* fingerprint register to each intermediate node; every
node holding a state sends it to its **left** neighbour independently with
probability 1/2; a node that kept its own state and receives one from the
right performs the SWAP test on the pair; the right end always contributes its
own fingerprint of ``y`` and the left end always keeps its fingerprint of
``x``.  Because a test between a fixed adjacent pair only happens with
probability 1/4, the soundness analysis needs conditional probabilities and
the resulting constants are worse than the symmetrized protocol of Algorithm 3
— which is exactly the comparison the benchmarks reproduce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


from repro.comm.problems import EqualityProblem
from repro.exceptions import ProtocolError
from repro.network.topology import Network, NodeId, path_network
from repro.protocols.base import DQMAProtocol, ProductProof, ProofRegister, RepeatedProtocol
from repro.protocols.equality import _ordered_path_nodes
from repro.quantum.fingerprint import ExactCodeFingerprint, FingerprintScheme
from repro.quantum.swap_test import swap_test_accept_probability_pure


class Fgnp21EqualityProtocol(DQMAProtocol):
    """The FGNP21 single-register protocol for ``EQ`` on a path (baseline)."""

    def __init__(
        self,
        network: Network,
        fingerprints: FingerprintScheme,
        problem: Optional[EqualityProblem] = None,
    ):
        if problem is None:
            problem = EqualityProblem(fingerprints.input_length, num_inputs=2)
        if problem.input_length != fingerprints.input_length:
            raise ProtocolError("fingerprint scheme and problem disagree on the input length")
        super().__init__(problem, network)
        self.fingerprints = fingerprints
        self.path_nodes = _ordered_path_nodes(network)
        self.path_length = len(self.path_nodes) - 1

    @classmethod
    def on_path(
        cls, input_length: int, path_length: int, fingerprints: Optional[FingerprintScheme] = None
    ) -> "Fgnp21EqualityProtocol":
        """Convenience constructor on the standard path ``v0 .. v_r``."""
        if fingerprints is None:
            fingerprints = ExactCodeFingerprint(input_length)
        return cls(path_network(path_length), fingerprints)

    # -- layout --------------------------------------------------------------

    def _register_name(self, node_index: int) -> str:
        return f"R[{node_index}]"

    def proof_registers(self) -> List[ProofRegister]:
        return [
            ProofRegister(self._register_name(index), self.path_nodes[index], self.fingerprints.dim)
            for index in range(1, self.path_length)
        ]

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages = {}
        for index in range(self.path_length):
            edge = (self.path_nodes[index + 1], self.path_nodes[index])
            messages[edge] = self.fingerprints.num_qubits
        return messages

    # -- proofs ---------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        fingerprint = self.fingerprints.state(inputs[0])
        return ProductProof(
            {self._register_name(index): fingerprint for index in range(1, self.path_length)}
        )

    # -- acceptance ------------------------------------------------------------

    def acceptance_probability(
        self, inputs: Sequence[str], proof: Optional[ProductProof] = None
    ) -> float:
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)

        states = [self.fingerprints.state(inputs[0])]
        for index in range(1, self.path_length):
            states.append(proof.state(self._register_name(index)))
        states.append(self.fingerprints.state(inputs[1]))

        # sends[j] = 1 when node v_j ships its state to the left neighbour.
        # v_0 never sends; v_1 .. v_r each send independently with probability 1/2.
        # Node v_j performs a SWAP test iff it keeps its state and v_{j+1} sends.
        # Expanding the expectation over the send bits couples only adjacent
        # bits, so a two-state transfer recursion computes it exactly.
        r = self.path_length
        # weight[s] accumulates the expectation restricted to send-bit value s of
        # the most recently processed node.
        weights = {0: 1.0, 1: 0.0}  # node v_0: never sends
        for j in range(1, r + 1):
            new_weights = {0: 0.0, 1: 0.0}
            for current_bit, current_probability in ((0, 0.5), (1, 0.5)):
                if j == r:
                    # The right end always sends its fingerprint of y leftwards,
                    # matching the original protocol where v_r's state is tested
                    # by v_{r-1} whenever v_{r-1} keeps its own state.
                    if current_bit == 0:
                        continue
                    current_probability = 1.0
                for previous_bit, weight in weights.items():
                    factor = 1.0
                    if current_bit == 1 and previous_bit == 0:
                        factor = swap_test_accept_probability_pure(states[j - 1], states[j])
                    new_weights[current_bit] += weight * current_probability * factor
            weights = new_weights
        probability = weights[0] + weights[1]
        return float(min(max(probability, 0.0), 1.0))

    # -- paper parameters -------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """The FGNP21 single-shot gap is ``Omega(1/r^2)`` with smaller constants.

        The original analysis loses a factor of 4 relative to the symmetrized
        protocol because each adjacent test only occurs with probability 1/4.
        """
        return 1.0 / (81.0 * self.path_length**2)

    def repeated(self, repetitions: int) -> RepeatedProtocol:
        """Parallel repetition of the baseline protocol."""
        return RepeatedProtocol(self, repetitions)
