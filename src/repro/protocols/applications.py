"""Protocol factories for the Section 6.2 applications of Theorem 32.

Each corollary of Section 6.2 plugs a specific one-way quantum protocol into
the generic tree construction of Algorithm 9:

* Corollary 35 — distances in an ℓ1-graph, via a scale embedding into a
  hypercube followed by the Hamming-distance protocol;
* Corollary 37 — ℓ1 distances between real vectors, via fixed-point (unary)
  encoding followed by the Hamming-distance protocol;
* Corollary 39 — linear-threshold XOR functions, via a weighted expansion of
  the inputs that turns the weighted threshold into a plain Hamming threshold;
* Corollary 41 — GF(2) matrix-rank-of-the-sum, via the exact-transmission
  one-way protocol (the cost calculators report the LZ13 formula).

Every factory returns a fully simulatable :class:`OneWayToTreeProtocol`
together with (when the natural inputs are not bit strings) an encoder mapping
the domain objects to the protocol's bit-string inputs.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.comm.l1_graphs import GraphDistanceProblem, HypercubeEmbedding
from repro.comm.one_way import (
    ExactMaskHammingOneWay,
    ExactTransmissionOneWay,
    OneWayProtocol,
)
from repro.comm.problems import HammingDistanceProblem, MatrixRankSumProblem
from repro.exceptions import EncodingError, ProtocolError
from repro.network.topology import Network, star_network
from repro.protocols.from_one_way import OneWayToTreeProtocol


_MAX_MASK_SKETCHES = 2000


def _hamming_one_way(problem: HammingDistanceProblem) -> OneWayProtocol:
    """Pick an exact one-way protocol for a Hamming-threshold problem.

    The erase-mask protocol is used while its sketch count stays manageable;
    otherwise the exact-transmission protocol (diagonal accept operator) takes
    over for moderate input lengths.  Both have exact semantics; only their
    register sizes differ from the LZ13 protocol whose cost the bound
    calculators report.
    """
    from math import comb

    sketches = sum(comb(problem.input_length, i) for i in range(problem.distance_bound + 1))
    if sketches <= _MAX_MASK_SKETCHES:
        return ExactMaskHammingOneWay(problem.input_length, problem.distance_bound)
    if problem.input_length <= 18:
        return ExactTransmissionOneWay(problem)
    raise ProtocolError(
        "no exact one-way protocol is available at this input length and threshold; "
        "pass a custom one_way protocol"
    )


def l1_graph_distance_protocol(
    embedding: HypercubeEmbedding,
    distance_bound: int,
    num_terminals: int,
    network: Optional[Network] = None,
    one_way: Optional[OneWayProtocol] = None,
) -> Tuple[OneWayToTreeProtocol, Callable[[Sequence], Tuple[str, ...]]]:
    """Corollary 35: verify that all terminals' vertices are within graph distance ``d``.

    Returns ``(protocol, encode)`` where ``encode`` maps a tuple of graph
    vertices to the protocol's bit-string inputs (the embedded codes).
    """
    if network is None:
        network = star_network(num_terminals)
    problem = GraphDistanceProblem(embedding, distance_bound, num_terminals)
    if one_way is None:
        one_way = _hamming_one_way(
            HammingDistanceProblem(problem.input_length, problem.hamming_threshold)
        )
    protocol = OneWayToTreeProtocol(problem, network, one_way)
    return protocol, problem.encode_vertices


def vector_l1_distance_protocol(
    dimension: int,
    resolution: int,
    distance_bound: float,
    num_terminals: int,
    network: Optional[Network] = None,
) -> Tuple[OneWayToTreeProtocol, Callable[[Sequence[np.ndarray]], Tuple[str, ...]]]:
    """Corollary 37: verify that all terminals' vectors in ``[0, 1]^dimension`` are ℓ1-close.

    Each coordinate is discretised to ``resolution`` levels and encoded in
    unary, so the ℓ1 distance between vectors becomes (up to the discretisation
    error ``dimension / resolution``) the Hamming distance between the
    encodings divided by ``resolution``.  The returned encoder performs the
    discretisation; the protocol checks a Hamming threshold of
    ``round(distance_bound * resolution)``.
    """
    if dimension < 1 or resolution < 1:
        raise ProtocolError("dimension and resolution must be positive")
    if distance_bound <= 0:
        raise ProtocolError("distance bound must be positive")
    if network is None:
        network = star_network(num_terminals)
    input_length = dimension * resolution
    threshold = int(round(distance_bound * resolution))
    problem = HammingDistanceProblem(input_length, threshold, num_terminals)
    one_way = _hamming_one_way(problem)
    protocol = OneWayToTreeProtocol(problem, network, one_way)

    def encode(vectors: Sequence[np.ndarray]) -> Tuple[str, ...]:
        encoded = []
        for vector in vectors:
            values = np.asarray(vector, dtype=float).reshape(-1)
            if values.size != dimension:
                raise EncodingError(f"expected vectors of dimension {dimension}")
            if values.min() < -1e-9 or values.max() > 1 + 1e-9:
                raise EncodingError("vector entries must lie in [0, 1]")
            chunks = []
            for value in values:
                level = int(round(float(value) * resolution))
                level = min(max(level, 0), resolution)
                chunks.append("1" * level + "0" * (resolution - level))
            encoded.append("".join(chunks))
        return tuple(encoded)

    return protocol, encode


def ltf_xor_protocol(
    weights: Sequence[int],
    threshold: float,
    num_terminals: int,
    network: Optional[Network] = None,
) -> Tuple[OneWayToTreeProtocol, Callable[[Sequence[str]], Tuple[str, ...]]]:
    """Corollary 39: verify ``f(x_i XOR x_j) = 1`` for an LTF ``f`` with integer weights.

    Repeating coordinate ``i`` exactly ``w_i`` times turns the weighted sum
    ``sum_i w_i z_i`` into the Hamming weight of the expanded string, so the
    LTF-XOR condition becomes a Hamming-distance threshold on the expanded
    inputs.  The returned encoder performs the expansion.
    """
    integer_weights = [int(w) for w in weights]
    if any(w < 0 for w in integer_weights) or not integer_weights:
        raise ProtocolError("weights must be non-negative integers")
    if any(abs(w - float(original)) > 1e-9 for w, original in zip(integer_weights, weights)):
        raise ProtocolError("the expansion encoding requires integer weights")
    if network is None:
        network = star_network(num_terminals)
    expanded_length = sum(integer_weights)
    if expanded_length < 1:
        raise ProtocolError("at least one weight must be positive")
    hamming_threshold = int(np.floor(threshold))
    problem = HammingDistanceProblem(expanded_length, hamming_threshold, num_terminals)
    one_way = _hamming_one_way(problem)
    protocol = OneWayToTreeProtocol(problem, network, one_way)

    def encode(inputs: Sequence[str]) -> Tuple[str, ...]:
        encoded = []
        for value in inputs:
            if len(value) != len(integer_weights):
                raise EncodingError(
                    f"expected inputs of length {len(integer_weights)}, got {len(value)}"
                )
            encoded.append("".join(ch * w for ch, w in zip(value, integer_weights)))
        return tuple(encoded)

    return protocol, encode


def matrix_rank_protocol(
    matrix_size: int,
    rank_bound: int,
    num_terminals: int,
    network: Optional[Network] = None,
) -> OneWayToTreeProtocol:
    """Corollary 41: verify ``rank(X_i + X_j) < rank_bound`` over GF(2) for all pairs.

    Uses the exact-transmission one-way protocol (Alice ships her matrix as a
    basis state; Bob evaluates the rank condition exactly), which keeps the
    simulation exact for the small matrices exercised here; the cost
    calculators report the LZ13 ``min(q^{O(r^2)}, O(nr log q + n log n))``
    formula for the asymptotic statement.
    """
    if network is None:
        network = star_network(num_terminals)
    problem = MatrixRankSumProblem(matrix_size, rank_bound, num_terminals)

    class _PairwiseRank(MatrixRankSumProblem):
        """Two-party view used by the exact-transmission accept operator."""

        def __init__(self) -> None:
            super().__init__(matrix_size, rank_bound, num_inputs=2)

        def two_party(self, x: str, y: str) -> bool:
            return self.pairwise(x, y)

    one_way = ExactTransmissionOneWay(_PairwiseRank())
    return OneWayToTreeProtocol(problem, network, one_way)
