"""From QMA one-way communication protocols to dQMA protocols (Section 7, Algorithm 10).

Theorem 42: any QMA one-way protocol (proof ``gamma`` qubits, message ``mu``
qubits) yields a dQMA protocol on a path in which the prover sends the QMA
proof to the left end ``v_0``, the left end applies Alice's unitary and feeds
the resulting pure state into the symmetrized SWAP-test chain of Algorithm 3,
and the right end applies Bob's measurement.

The flagship instantiation is the Linear Subspace Distance problem
(:class:`LSDPathProtocol`), which by Lemmas 44/45 is complete for QMA
communication protocols — this is the concrete protocol behind the
dQMA → dQMA_sep conversion of Theorem 46 and Proposition 47.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.lsd import LinearSubspaceDistanceInstance
from repro.comm.problems import TwoPartyProblem
from repro.comm.qma import LSDQMAOneWay, QMAOneWayProtocol
from repro.exceptions import ProtocolError
from repro.network.topology import Network, NodeId, path_network
from repro.protocols.base import (
    DQMAProtocol,
    ProductProof,
    ProofRegister,
    RepeatedProtocol,
)
from repro.engine import ChainJob, ChainProgram
from repro.protocols.equality import _ordered_path_nodes


class PromiseInstanceProblem(TwoPartyProblem):
    """A placeholder problem whose truth value is fixed by an external instance.

    Used to fit promise problems whose inputs are not bit strings (such as the
    LSD problem, whose inputs are subspaces) into the :class:`DQMAProtocol`
    interface: the terminals hold dummy one-bit inputs and the predicate value
    is the instance's promise label.
    """

    def __init__(self, label: bool):
        super().__init__(input_length=1)
        self.label = bool(label)

    @property
    def name(self) -> str:
        return f"PromiseInstance[label={self.label}]"

    def evaluate(self, inputs: Sequence[str]) -> bool:
        self.validate_inputs(inputs)
        return self.label


class QMAOneWayToPathProtocol(DQMAProtocol):
    """Algorithm 10: the dQMA protocol ``P_QMAcc`` built from a QMA one-way protocol."""

    def __init__(
        self,
        network: Network,
        qma_protocol: QMAOneWayProtocol,
        problem: TwoPartyProblem,
        alice_input: str = "0",
        bob_input: str = "0",
    ):
        super().__init__(problem, network)
        self.qma_protocol = qma_protocol
        self.alice_input = alice_input
        self.bob_input = bob_input
        self.path_nodes = _ordered_path_nodes(network)
        self.path_length = len(self.path_nodes) - 1

    # -- layout --------------------------------------------------------------

    def _proof_register_name(self) -> str:
        return "P[0]"

    def _pair_register_name(self, node_index: int, slot: int) -> str:
        return f"S[{node_index},{slot}]"

    def proof_registers(self) -> List[ProofRegister]:
        registers = [
            ProofRegister(self._proof_register_name(), self.path_nodes[0], self.qma_protocol.proof_dim)
        ]
        for index in range(1, self.path_length):
            node = self.path_nodes[index]
            for slot in (0, 1):
                registers.append(
                    ProofRegister(
                        self._pair_register_name(index, slot), node, self.qma_protocol.forwarded_dim
                    )
                )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages = {}
        for index in range(self.path_length):
            edge = (self.path_nodes[index], self.path_nodes[index + 1])
            messages[edge] = self.qma_protocol.forwarded_qubits
        return messages

    # -- proofs ---------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        proof_state = self.qma_protocol.honest_proof(self.alice_input, self.bob_input)
        forwarded = self.qma_protocol.alice_state(self.alice_input, proof_state)
        norm = np.linalg.norm(forwarded)
        if norm > 1e-12:
            forwarded = forwarded / norm
        states: Dict[str, np.ndarray] = {self._proof_register_name(): proof_state}
        for index in range(1, self.path_length):
            states[self._pair_register_name(index, 0)] = forwarded
            states[self._pair_register_name(index, 1)] = forwarded
        return ProductProof(states)

    # -- acceptance ------------------------------------------------------------

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> ChainProgram:
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)

        raw_forwarded = self.qma_protocol.alice_state(
            self.alice_input, proof.state(self._proof_register_name())
        )
        alice_accept = float(np.real(np.vdot(raw_forwarded, raw_forwarded)))
        if alice_accept <= 1e-15:
            return ChainProgram.rejecting()
        left_state = raw_forwarded / np.sqrt(alice_accept)

        pairs = []
        for index in range(1, self.path_length):
            pairs.append(
                (
                    proof.state(self._pair_register_name(index, 0)),
                    proof.state(self._pair_register_name(index, 1)),
                )
            )
        right_operator = self.engine.cached_operator(
            ("qma-bob", self.qma_protocol.cache_token, self.bob_input),
            lambda: self.qma_protocol.bob_accept_operator(self.bob_input),
        )
        # Alice's success probability scales the chain term (Algorithm 10
        # conditions the forwarded state on her accepting).
        return ChainProgram.single(
            ChainJob.from_states(left_state, pairs, right_operator), weight=alice_accept
        )

    # -- paper parameters -------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """Single-shot soundness gap ``4 / (81 r^2)`` (Lemma 43)."""
        return 4.0 / (81.0 * self.path_length**2)

    def paper_repetitions(self) -> int:
        """The ``O(r^2)`` repetition count of Theorem 42."""
        return int(ceil(2.0 * 81.0 * self.path_length**2 / 4.0))

    def repeated(self, repetitions: Optional[int] = None) -> RepeatedProtocol:
        """Parallel repetition of the protocol."""
        if repetitions is None:
            repetitions = self.paper_repetitions()
        return RepeatedProtocol(self, repetitions)


class LSDPathProtocol(QMAOneWayToPathProtocol):
    """The dQMA_sep protocol for the LSD problem on a path (Theorem 42 + Lemma 45)."""

    def __init__(self, instance: LinearSubspaceDistanceInstance, path_length: int):
        if path_length < 1:
            raise ProtocolError("path length must be at least 1")
        self.instance = instance
        label = instance.label()
        problem = PromiseInstanceProblem(label if label is not None else False)
        super().__init__(
            path_network(path_length),
            LSDQMAOneWay(instance),
            problem,
            alice_input="0",
            bob_input="0",
        )

    def acceptance_on_promise(self) -> float:
        """Acceptance probability of the honest proof (dummy inputs are implicit)."""
        return self.acceptance_probability(("0", "0"))
