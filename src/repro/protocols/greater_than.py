"""dQMA protocol for the greater-than function (Section 5.1, Algorithm 7).

The key observation is that ``GT(x, y) = 1`` iff there is an index ``i`` with
``x_i = 1``, ``y_i = 0`` and ``x[i] = y[i]`` (equal prefixes).  The prover
therefore sends a classical index ``i`` (as a basis state of an *index
register*) to every node together with fingerprints of the common prefix, the
nodes compare the indices along the path, the extremities check their own bit
at position ``i``, and the fingerprint chain of Algorithm 3 verifies the
prefix equality.  The non-strict variants ``GT_>=`` and ``GT_<=``
(Corollary 28) extend the index domain with a sentinel value meaning
"the strings are equal", in which case the chain verifies full-string
equality and the bit checks are skipped.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.problems import GreaterThanProblem
from repro.exceptions import ProtocolError
from repro.network.topology import Network, NodeId, path_network
from repro.protocols.base import (
    DQMAProtocol,
    ProductProof,
    ProofRegister,
    RepeatedProtocol,
)
from repro.engine import RIGHT_SWAP, ChainJob, ChainProgram
from repro.protocols.equality import _ordered_path_nodes
from repro.quantum.fingerprint import ExactCodeFingerprint, FingerprintScheme
from repro.quantum.states import basis_state


class GreaterThanPathProtocol(DQMAProtocol):
    """Algorithm 7: the dQMA protocol for ``GT`` (and variants) on a path."""

    def __init__(
        self,
        network: Network,
        fingerprints: FingerprintScheme,
        variant: str = ">",
        problem: Optional[GreaterThanProblem] = None,
        index_dim: Optional[int] = None,
    ):
        if problem is None:
            problem = GreaterThanProblem(fingerprints.input_length, variant=variant)
        if problem.input_length != fingerprints.input_length:
            raise ProtocolError("fingerprint scheme and problem disagree on the input length")
        if problem.variant != variant:
            raise ProtocolError("problem variant does not match the protocol variant")
        super().__init__(problem, network)
        self.fingerprints = fingerprints
        self.variant = variant
        self.path_nodes = _ordered_path_nodes(network)
        self.path_length = len(self.path_nodes) - 1
        self.index_dim = self._index_dim() if index_dim is None else int(index_dim)
        if self.index_dim < self._index_dim():
            raise ProtocolError(
                "index register dimension is too small for the chosen variant"
            )

    @classmethod
    def on_path(
        cls,
        input_length: int,
        path_length: int,
        variant: str = ">",
        fingerprints: Optional[FingerprintScheme] = None,
    ) -> "GreaterThanPathProtocol":
        """Convenience constructor on the standard path ``v0 .. v_r``."""
        if fingerprints is None:
            fingerprints = ExactCodeFingerprint(input_length)
        return cls(path_network(path_length), fingerprints, variant=variant)

    # -- index handling --------------------------------------------------------

    def _index_dim(self) -> int:
        n = self.problem.input_length
        # Non-strict variants use an extra sentinel index meaning "x = y".
        return n + 1 if self.variant in (">=", "<=") else n

    @property
    def _equality_sentinel(self) -> Optional[int]:
        return self.problem.input_length if self.variant in (">=", "<=") else None

    def _padded_prefix(self, value: str, index: int) -> str:
        """The prefix ``value[:index]`` padded with zeros to the full input length."""
        n = self.problem.input_length
        if index >= n:
            return value
        prefix = value[:index]
        return prefix + "0" * (n - len(prefix))

    def _endpoint_checks(self, inputs: Sequence[str], index: int) -> bool:
        """The deterministic bit checks of ``v_0`` and ``v_r`` for a measured index."""
        x, y = inputs
        if index == self._equality_sentinel:
            return True
        if index >= self.problem.input_length:
            # Out-of-range index values (possible when the index register was
            # widened to align with another variant) are rejected outright.
            return False
        if self.variant in (">", ">="):
            return x[index] == "1" and y[index] == "0"
        return x[index] == "0" and y[index] == "1"

    def honest_index(self, inputs: Sequence[str]) -> int:
        """The index the honest prover sends for a yes-instance."""
        inputs = self.problem.validate_inputs(inputs)
        x, y = inputs
        if self.variant in (">=", "<=") and x == y:
            return self._equality_sentinel
        witness = self.problem.witness_index(x, y)
        if witness is None:
            # No witness exists on a no-instance; an honest-but-wrong prover
            # simply claims index 0.
            return 0
        return witness

    # -- layout -----------------------------------------------------------------

    def _index_register_name(self, node_index: int) -> str:
        return f"I[{node_index}]"

    def _fingerprint_register_name(self, node_index: int, slot: int) -> str:
        return f"R[{node_index},{slot}]"

    def proof_registers(self) -> List[ProofRegister]:
        registers = []
        for index in range(self.path_length + 1):
            registers.append(
                ProofRegister(self._index_register_name(index), self.path_nodes[index], self.index_dim)
            )
        for index in range(1, self.path_length):
            node = self.path_nodes[index]
            for slot in (0, 1):
                registers.append(
                    ProofRegister(
                        self._fingerprint_register_name(index, slot), node, self.fingerprints.dim
                    )
                )
        return registers

    def _messages(self) -> Dict[Tuple[NodeId, NodeId], float]:
        messages = {}
        index_qubits = float(np.ceil(np.log2(max(self.index_dim, 2))))
        for index in range(self.path_length):
            edge = (self.path_nodes[index], self.path_nodes[index + 1])
            messages[edge] = self.fingerprints.num_qubits + index_qubits
        return messages

    # -- proofs -------------------------------------------------------------------

    def honest_proof(self, inputs: Sequence[str]) -> ProductProof:
        inputs = self.problem.validate_inputs(inputs)
        index = self.honest_index(inputs)
        index_state = basis_state(self.index_dim, index)
        prefix_fingerprint = self.fingerprints.state(self._padded_prefix(inputs[0], index))
        states = {}
        for node_index in range(self.path_length + 1):
            states[self._index_register_name(node_index)] = index_state
        for node_index in range(1, self.path_length):
            states[self._fingerprint_register_name(node_index, 0)] = prefix_fingerprint
            states[self._fingerprint_register_name(node_index, 1)] = prefix_fingerprint
        return ProductProof(states)

    # -- acceptance -----------------------------------------------------------------

    def _acceptance_program(
        self, inputs: Sequence[str], proof: Optional[ProductProof]
    ) -> ChainProgram:
        inputs = self.problem.validate_inputs(inputs)
        if proof is None:
            proof = self.honest_proof(inputs)
        else:
            self.validate_proof(proof)

        # Probability of measuring index value i at node j.
        index_probabilities = []
        for node_index in range(self.path_length + 1):
            amplitudes = proof.state(self._index_register_name(node_index))
            index_probabilities.append(np.abs(amplitudes) ** 2)

        pairs = []
        for node_index in range(1, self.path_length):
            pairs.append(
                (
                    proof.state(self._fingerprint_register_name(node_index, 0)),
                    proof.state(self._fingerprint_register_name(node_index, 1)),
                )
            )

        # One chain job per surviving index value, weighted by the joint
        # probability of every node measuring that index.
        jobs: List[ChainJob] = []
        terms = []
        for index in range(self.index_dim):
            joint = 1.0
            for probabilities in index_probabilities:
                joint *= float(probabilities[index])
                if joint == 0.0:
                    break
            if joint == 0.0:
                continue
            if not self._endpoint_checks(inputs, index):
                continue
            left_state = self.fingerprints.state(self._padded_prefix(inputs[0], index))
            # The right end SWAP-tests against its own fingerprint of the
            # padded prefix of y: a rank-one-structured (I + |h><h|)/2 end.
            right_state = self.fingerprints.state(self._padded_prefix(inputs[1], index))
            terms.append((joint, (len(jobs),)))
            jobs.append(
                ChainJob.from_states(left_state, pairs, right_state, right_kind=RIGHT_SWAP)
            )
        if not jobs:
            return ChainProgram.rejecting()
        return ChainProgram(jobs=tuple(jobs), terms=tuple(terms))

    # -- paper parameters --------------------------------------------------------------

    def single_shot_soundness_gap(self) -> float:
        """Single-shot gap inherited from the equality chain: ``4 / (81 r^2)``."""
        return 4.0 / (81.0 * self.path_length**2)

    def paper_repetitions(self) -> int:
        """Repetition count ``O(r^2)`` for soundness 1/3 (Theorem 26)."""
        return int(ceil(2.0 * 81.0 * self.path_length**2 / 4.0))

    def repeated(self, repetitions: Optional[int] = None) -> RepeatedProtocol:
        """Parallel repetition of the protocol."""
        if repetitions is None:
            repetitions = self.paper_repetitions()
        return RepeatedProtocol(self, repetitions)
