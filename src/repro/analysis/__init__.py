"""Soundness and adversary analysis.

The soundness condition of a dQMA protocol is a supremum over *all* proofs.
This package provides three complementary ways of evaluating that supremum on
concrete instances:

* exact optimisation over entangled proofs via the acceptance operator's
  largest eigenvalue (:func:`repro.protocols.chain.optimal_entangled_acceptance`),
* seesaw (alternating eigenvector) optimisation over separable proofs —
  the ``dQMA_sep,sep`` adversary (:mod:`repro.analysis.adversary`),
* structured searches over fingerprint-valued product proofs, which capture
  the natural cheating strategies (:mod:`repro.analysis.soundness`).
"""

from repro.analysis.adversary import (
    random_product_search,
    seesaw_separable_acceptance,
)
from repro.analysis.soundness import (
    SoundnessReport,
    StrategySearchResult,
    entangled_soundness_report,
    fingerprint_strategy_soundness,
    paper_bound_slack,
    repetition_soundness,
)

__all__ = [
    "random_product_search",
    "seesaw_separable_acceptance",
    "SoundnessReport",
    "StrategySearchResult",
    "entangled_soundness_report",
    "fingerprint_strategy_soundness",
    "paper_bound_slack",
    "repetition_soundness",
]
