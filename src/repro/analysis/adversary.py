"""Adversarial provers: optimising acceptance over restricted proof classes.

Given an acceptance operator ``E`` on a tensor-product proof space (so that a
proof ``rho`` is accepted with probability ``tr(E rho)``), the optimal
*entangled* proof is the top eigenvector of ``E``.  The optimal *separable*
proof — the adversary of the ``dQMA_sep,sep`` model of Section 8.1 — is
``max tr(E rho_1 (x) ... (x) rho_k)``, which this module approximates from
below by seesaw iteration (alternately optimising one factor with the others
fixed, each step being an exact eigenvector computation) with random restarts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.quantum.channels import KrausChannel, apply_channels_adjoint
from repro.quantum.random_states import haar_random_state
from repro.utils.rng import RngLike, ensure_rng


def _with_channels(
    operator: np.ndarray,
    dims: Sequence[int],
    channels: Optional[Sequence[Optional[KrausChannel]]],
) -> np.ndarray:
    """Fold per-factor delivery channels into the acceptance operator.

    With channels the adversary optimises ``tr(E (C_1(rho_1) (x) ...))`` —
    the proof the prover *sends* is noiseless, but each factor passes its
    channel before the verifier measures.  In the Heisenberg picture that is
    the noiseless optimisation of ``(C_1^+ (x) ...)(E)``, so the seesaw and
    the random search run unchanged on the conjugated operator.
    """
    if channels is None:
        return operator
    return apply_channels_adjoint(operator, dims, channels)


def _validate(operator: np.ndarray, dims: Sequence[int]) -> Tuple[np.ndarray, List[int]]:
    dims = [int(d) for d in dims]
    total = int(np.prod(dims))
    op = np.asarray(operator, dtype=np.complex128)
    if op.shape != (total, total):
        raise DimensionMismatchError(
            f"operator shape {op.shape} does not match factor dimensions {dims}"
        )
    return op, dims


def _normalized(vector: np.ndarray) -> np.ndarray:
    vec = np.asarray(vector, dtype=np.complex128).reshape(-1)
    norm = np.linalg.norm(vec)
    if norm < 1e-15:
        raise DimensionMismatchError("cannot normalize a zero proof factor")
    return vec / norm


def product_acceptance(operator: np.ndarray, factors: Sequence[np.ndarray]) -> float:
    """``<phi_1 ... phi_k| E |phi_1 ... phi_k>`` for a product proof."""
    state = np.array([1.0 + 0.0j])
    for factor in factors:
        state = np.kron(state, _normalized(factor))
    value = float(np.real(np.vdot(state, np.asarray(operator, dtype=np.complex128) @ state)))
    return min(max(value, 0.0), 1.0)


def conditional_operator(
    operator: np.ndarray, dims: Sequence[int], factors: Sequence[np.ndarray], position: int
) -> np.ndarray:
    """The effective operator on factor ``position`` with the other factors fixed.

    With ``|phi_other>`` the tensor product of the remaining (normalized)
    factors, the returned matrix ``M`` satisfies
    ``<psi| M |psi> = <phi_1 ... psi ... phi_k| E |phi_1 ... psi ... phi_k>``.
    """
    op, dims = _validate(operator, dims)
    k = len(dims)
    if not (0 <= position < k):
        raise DimensionMismatchError(f"factor position {position} out of range")
    target_dim = dims[position]
    other_factors = [
        _normalized(factors[index]) for index in range(k) if index != position
    ]
    other_state = np.array([1.0 + 0.0j])
    for factor in other_factors:
        other_state = np.kron(other_state, factor)
    other_dim = int(np.prod([dims[i] for i in range(k) if i != position])) if k > 1 else 1

    # Reorder axes so the target factor comes first on both the row and the
    # column side, then contract the remaining axes with |phi_other>.
    tensor = op.reshape(dims + dims)
    order = [position] + [i for i in range(k) if i != position]
    permutation = order + [k + i for i in order]
    reordered = np.transpose(tensor, permutation)
    matrix = reordered.reshape(target_dim, other_dim, target_dim, other_dim)
    if other_dim == 1:
        return matrix.reshape(target_dim, target_dim)
    return np.einsum("r,arbs,s->ab", np.conj(other_state), matrix, other_state)


_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXY"


def _conditional_operators_batched(
    op_tensor: np.ndarray,
    dims: Sequence[int],
    factors: Sequence[np.ndarray],
    position: int,
) -> np.ndarray:
    """Stacked conditional operators of one factor, over a batch of restarts.

    ``factors[p]`` has shape ``(batch, dims[p])``; the result has shape
    ``(batch, dims[position], dims[position])`` and equals
    :func:`conditional_operator` applied per restart.
    """
    k = len(dims)
    batch = factors[0].shape[0]
    if k == 1:
        return np.broadcast_to(op_tensor, (batch,) + op_tensor.shape)
    row_letters = _LETTERS[:k]
    col_letters = _LETTERS[k : 2 * k]
    batch_letter = "Z"
    operands: List[np.ndarray] = [op_tensor]
    subscripts = [row_letters + col_letters]
    for q in range(k):
        if q == position:
            continue
        operands.append(np.conj(factors[q]))
        subscripts.append(batch_letter + row_letters[q])
        operands.append(factors[q])
        subscripts.append(batch_letter + col_letters[q])
    output = batch_letter + row_letters[position] + col_letters[position]
    return np.einsum(
        ",".join(subscripts) + "->" + output, *operands, optimize=True
    )


def _batched_product_acceptance(
    op_tensor: np.ndarray, dims: Sequence[int], factors: Sequence[np.ndarray]
) -> np.ndarray:
    """``<phi_1 ... phi_k| E |phi_1 ... phi_k>`` per restart, clipped to [0, 1]."""
    conditional = _conditional_operators_batched(op_tensor, dims, factors, 0)
    states = factors[0]
    values = np.einsum("Za,Zab,Zb->Z", np.conj(states), conditional, states).real
    return np.clip(values, 0.0, 1.0)


def seesaw_separable_acceptance(
    operator: np.ndarray,
    dims: Sequence[int],
    iterations: int = 30,
    restarts: int = 8,
    rng: RngLike = None,
    channels: Optional[Sequence[Optional[KrausChannel]]] = None,
) -> Tuple[float, List[np.ndarray]]:
    """Lower bound on the best separable-proof acceptance, with the achieving proof.

    Seesaw iteration: starting from random product states, repeatedly replace
    one factor by the top eigenvector of its conditional operator.  Each sweep
    is monotone non-decreasing, so the final value is a certified *achievable*
    acceptance probability (a lower bound on the separable supremum).

    All restarts run in lockstep: every restart's initial product state is
    drawn up front from the passed generator in restart-major order (so the
    result is reproducible and independent of the optimisation interleaving),
    and each eigen step is one stacked ``np.linalg.eigh`` over the still-active
    restarts instead of a Python loop.  A restart leaves the active set after
    a full sweep without improvement, exactly as in the scalar recursion.

    ``channels`` (one optional Kraus channel per factor) models noisy proof
    delivery: the search then maximises the *noisy* acceptance over the pure
    product proofs the prover sends (see :func:`_with_channels`).
    """
    op, dims = _validate(operator, dims)
    op = _with_channels(op, dims, channels)
    generator = ensure_rng(rng)
    k = len(dims)
    num_restarts = max(restarts, 1)
    initial = [
        [haar_random_state(dim, generator) for dim in dims] for _ in range(num_restarts)
    ]
    factors = [
        np.stack([initial[restart][position] for restart in range(num_restarts)])
        for position in range(k)
    ]
    op_tensor = op.reshape(tuple(dims) * 2)
    values = _batched_product_acceptance(op_tensor, dims, factors)
    active = np.ones(num_restarts, dtype=bool)
    for _ in range(max(iterations, 1)):
        improved = np.zeros(num_restarts, dtype=bool)
        for position in range(k):
            conditional = _conditional_operators_batched(op_tensor, dims, factors, position)
            hermitian = (conditional + np.conj(np.transpose(conditional, (0, 2, 1)))) / 2
            eigenvalues, eigenvectors = np.linalg.eigh(hermitian)
            # After the update the factor is the top eigenvector, so the new
            # product acceptance is the top eigenvalue itself.
            new_values = np.clip(eigenvalues[:, -1], 0.0, 1.0)
            factors[position][active] = eigenvectors[active, :, -1]
            improved |= active & (new_values > values + 1e-12)
            values = np.where(active, new_values, values)
        active &= improved
        if not active.any():
            break
    best = int(np.argmax(values))
    best_factors = [factors[position][best].copy() for position in range(k)]
    return float(min(max(float(values[best]), 0.0), 1.0)), best_factors


def random_product_search(
    operator: np.ndarray,
    dims: Sequence[int],
    samples: int = 200,
    rng: RngLike = None,
    channels: Optional[Sequence[Optional[KrausChannel]]] = None,
) -> float:
    """Best acceptance found by sampling Haar-random product proofs.

    ``channels`` folds per-factor delivery noise into the operator, exactly
    as in :func:`seesaw_separable_acceptance`.
    """
    op, dims = _validate(operator, dims)
    op = _with_channels(op, dims, channels)
    generator = ensure_rng(rng)
    best = 0.0
    for _ in range(max(samples, 1)):
        factors = [haar_random_state(dim, generator) for dim in dims]
        best = max(best, product_acceptance(op, factors))
    return best
