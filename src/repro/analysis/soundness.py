"""Soundness evaluation of dQMA protocols on concrete instances.

The paper's soundness statements bound the acceptance probability of a
no-instance over *all* proofs.  For the path protocols the library can compute
that supremum exactly on small instances (via the acceptance operator); for
the remaining protocols it searches over the natural structured cheating
strategies (fingerprint-valued product proofs) and reports the best found.

The strategy search compiles its whole enumeration — up to
``max_assignments`` product proofs — into batched
``acceptance_probabilities`` calls, so a soundness table costs a handful of
stacked engine contractions instead of one scalar protocol evaluation per
cheating strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.adversary import seesaw_separable_acceptance
from repro.engine.array_ops import parity_tolerance
from repro.exceptions import ProtocolError
from repro.protocols.base import DQMAProtocol, ProductProof
from repro.quantum.channels import NoiseModel
from repro.utils.rng import RngLike, ensure_rng

#: Number of cheating strategies evaluated per batched engine call.
STRATEGY_BATCH_SIZE = 256


def paper_bound_slack(dtype=None) -> float:
    """Numerical slack granted when checking acceptances against paper bounds.

    Derived from the contraction dtype's parity tolerance (``REPRO_DTYPE``
    when ``dtype`` is ``None``): a complex64 evaluation is only accurate to
    1e-5, so holding it to the old hard-coded ``1e-9`` slack flagged
    spurious bound violations.
    """
    return parity_tolerance(dtype)


def _protocol_dtype(protocol: DQMAProtocol):
    """The contraction dtype of the protocol's engine backend (or ``None``).

    ``None`` means the backend declares no dtype (the dense reference
    backend, which contracts in complex128) — callers fall back to the
    environment's active dtype via :func:`paper_bound_slack`.
    """
    engine = getattr(protocol, "engine", None)
    return getattr(getattr(engine, "backend", None), "dtype", None)


def _noisy_variant(protocol: DQMAProtocol, noise: Optional[NoiseModel]) -> DQMAProtocol:
    """The protocol itself, or its ``with_noise`` sibling for a non-trivial model."""
    if noise is None or noise.is_trivial:
        return protocol
    return protocol.with_noise(noise)


@dataclass(frozen=True)
class StrategySearchResult:
    """Outcome of a cheating-strategy search.

    Iterable as ``(best_acceptance, best_proof)`` for backwards
    compatibility with the original two-tuple return.
    """

    best_acceptance: float
    best_proof: Optional[ProductProof]
    best_strategy: str
    num_assignments: int

    def __iter__(self) -> Iterator:
        return iter((self.best_acceptance, self.best_proof))


@dataclass(frozen=True)
class SoundnessReport:
    """Summary of a soundness experiment on one no-instance."""

    inputs: Tuple[str, ...]
    honest_acceptance: float
    best_found_acceptance: float
    optimal_entangled_acceptance: Optional[float]
    paper_bound: Optional[float]
    #: Label of the strategy achieving ``best_found_acceptance`` (``"honest"``,
    #: a per-node string assignment, or ``"seesaw"``) — makes table output
    #: auditable.
    best_strategy: Optional[str] = None
    #: Numerical slack of :attr:`respects_paper_bound`.  ``None`` derives it
    #: from the active contraction dtype at check time (see
    #: :func:`paper_bound_slack`); report builders pin the evaluating
    #: backend's dtype tolerance here instead.
    bound_slack: Optional[float] = None

    @property
    def respects_paper_bound(self) -> bool:
        """True when every measured acceptance stays below the paper's bound.

        The comparison grants the contraction dtype's parity tolerance as
        slack (1e-9 in complex128, 1e-5 in complex64) — a reduced-precision
        evaluation must not flag a bound violation its own rounding caused.
        """
        if self.paper_bound is None:
            return True
        observed = self.best_found_acceptance
        if self.optimal_entangled_acceptance is not None:
            observed = max(observed, self.optimal_entangled_acceptance)
        slack = self.bound_slack if self.bound_slack is not None else paper_bound_slack()
        return observed <= self.paper_bound + slack


def _strategy_label(nodes: Sequence, combo: Sequence[str]) -> str:
    return ",".join(f"{node}={string}" for node, string in zip(nodes, combo))


def fingerprint_strategy_soundness(
    protocol: DQMAProtocol,
    inputs: Sequence[str],
    candidate_strings: Optional[Iterable[str]] = None,
    max_assignments: int = 4096,
    batch_size: int = STRATEGY_BATCH_SIZE,
    noise: Optional[NoiseModel] = None,
) -> StrategySearchResult:
    """Best acceptance over proofs built from fingerprints of candidate strings.

    This is the natural cheating family for the fingerprint-based protocols:
    the prover fills every fingerprint-sized register with the fingerprint of
    some string (defaulting to the instance's own inputs), and any classical
    index / direction / relay registers with their honest contents.  The
    search enumerates assignments where all registers of a node share one
    string (the strategies the paper's soundness analyses reason about) and
    evaluates them through the engine's batched API, ``batch_size``
    strategies per stacked contraction.

    A non-trivial ``noise`` model re-targets the evaluation at the
    protocol's :meth:`~repro.protocols.base.DQMAProtocol.with_noise` sibling:
    every batched strategy assignment then runs on the engine's
    density-matrix path (``ChainNoise``/``TreeNoise``-annotated jobs), so the
    search reports the best structured cheat *under* the channel model.  A
    protocol constructed with its own noise model already evaluates noisily
    without this argument.
    """
    fingerprints = getattr(protocol, "fingerprints", None)
    if fingerprints is None:
        raise ProtocolError("fingerprint strategy search needs a fingerprint-based protocol")
    protocol = _noisy_variant(protocol, noise)
    inputs = tuple(inputs)
    if candidate_strings is None:
        candidate_strings = list(dict.fromkeys(inputs))
    candidates = list(dict.fromkeys(candidate_strings))

    honest = protocol.honest_proof(inputs)
    registers = protocol.proof_registers()
    fingerprint_registers = [reg for reg in registers if reg.dim == fingerprints.dim]
    nodes = sorted({reg.node for reg in fingerprint_registers}, key=str)

    assignments = len(candidates) ** len(nodes)
    if assignments > max_assignments:
        raise ProtocolError(
            f"{assignments} candidate assignments exceed the search limit {max_assignments}"
        )

    # One ProductProof construction per strategy (not a replaced() chain,
    # which would re-normalize every register once per replacement), with the
    # candidate fingerprints computed once up front.
    candidate_states = {string: fingerprints.state(string) for string in candidates}
    honest_states = {name: honest.state(name) for name in honest.register_names}

    def build_proof(combo: Sequence[str]) -> ProductProof:
        node_string = dict(zip(nodes, combo))
        states = dict(honest_states)
        for register in fingerprint_registers:
            states[register.name] = candidate_states[node_string[register.node]]
        return ProductProof(states)

    labels: List[str] = ["honest"]
    proofs: List[ProductProof] = [honest]
    for combo in iter_product(candidates, repeat=len(nodes)):
        labels.append(_strategy_label(nodes, combo))
        proofs.append(build_proof(combo))

    best_value = -1.0
    best_index = 0
    batch = max(int(batch_size), 1)
    for start in range(0, len(proofs), batch):
        chunk = proofs[start : start + batch]
        values = protocol.acceptance_probabilities([inputs] * len(chunk), proofs=chunk)
        local = int(np.argmax(values))
        if values[local] > best_value:
            best_value = float(values[local])
            best_index = start + local
    return StrategySearchResult(
        best_acceptance=float(best_value),
        best_proof=proofs[best_index],
        best_strategy=labels[best_index],
        num_assignments=assignments,
    )


def entangled_soundness_report(
    protocol: DQMAProtocol,
    inputs: Sequence[str],
    paper_bound: Optional[float] = None,
    run_seesaw: bool = False,
    rng: RngLike = None,
    noise: Optional[NoiseModel] = None,
) -> SoundnessReport:
    """Full soundness report for a (small) path-protocol instance.

    Includes the honest-proof acceptance, the best structured product proof
    found (with the strategy label that achieved it), and — when the protocol
    exposes an acceptance operator — the exact optimum over entangled proofs
    (optionally cross-checked against the seesaw separable optimum).

    With a non-trivial ``noise`` model every quantity is computed on the
    protocol's noisy sibling: honest and strategy-search acceptances ride
    the engine's density-matrix path, and the entangled optimum (when the
    protocol exposes a noisy acceptance operator) diagonalises the
    channel-conjugated operator — the seesaw then bounds the noisy
    *separable* adversary from below.  The paper bound stays the noiseless
    protocol's bound: the report asks whether realistic hardware still
    respects the ideal soundness statement.
    """
    inputs = tuple(inputs)
    evaluated = _noisy_variant(protocol, noise)
    noisy = evaluated is not protocol
    honest_acceptance = evaluated.acceptance_probability(inputs, None)
    try:
        search = fingerprint_strategy_soundness(evaluated, inputs)
        best_found = search.best_acceptance
        best_strategy: Optional[str] = search.best_strategy
    except ProtocolError:
        best_found = honest_acceptance
        best_strategy = "honest"

    optimal = None
    operator = None
    # Instances beyond the operator builders' dimension guard degrade to the
    # structured search alone (the report's optimal_entangled stays None).
    try:
        if noisy:
            if hasattr(evaluated, "noisy_acceptance_operator"):
                operator = evaluated.noisy_acceptance_operator(inputs)
        elif hasattr(evaluated, "acceptance_operator"):
            operator = evaluated.acceptance_operator(inputs)
    except ProtocolError:
        operator = None
    if operator is not None:
        eigenvalues = np.linalg.eigvalsh((operator + operator.conj().T) / 2)
        optimal = float(min(max(eigenvalues[-1].real, 0.0), 1.0))
        if run_seesaw:
            dims = [register.dim for register in evaluated.proof_registers()]
            seesaw_value, _ = seesaw_separable_acceptance(operator, dims, rng=ensure_rng(rng))
            if seesaw_value > best_found:
                best_found = seesaw_value
                best_strategy = "seesaw"

    if paper_bound is None and hasattr(protocol, "single_shot_soundness_gap"):
        paper_bound = 1.0 - protocol.single_shot_soundness_gap()

    return SoundnessReport(
        inputs=inputs,
        honest_acceptance=honest_acceptance,
        best_found_acceptance=best_found,
        optimal_entangled_acceptance=optimal,
        paper_bound=paper_bound,
        best_strategy=best_strategy,
        bound_slack=paper_bound_slack(_protocol_dtype(evaluated)),
    )


def repetition_soundness(single_shot_acceptance: float, repetitions: int) -> float:
    """Acceptance of a no-instance after parallel repetition: ``p^k``.

    For product proofs the copies are independent, so the best cheating
    probability of the repeated protocol is the single-shot optimum raised to
    the number of repetitions — the quantity driving the Algorithm 4 analysis.
    """
    if repetitions <= 0:
        raise ProtocolError("repetition count must be positive")
    p = min(max(single_shot_acceptance, 0.0), 1.0)
    return float(p**repetitions)
