"""Soundness evaluation of dQMA protocols on concrete instances.

The paper's soundness statements bound the acceptance probability of a
no-instance over *all* proofs.  For the path protocols the library can compute
that supremum exactly on small instances (via the acceptance operator); for
the remaining protocols it searches over the natural structured cheating
strategies (fingerprint-valued product proofs) and reports the best found.

The strategy search compiles its whole enumeration — up to
``max_assignments`` product proofs — into batched
``acceptance_probabilities`` calls, so a soundness table costs a handful of
stacked engine contractions instead of one scalar protocol evaluation per
cheating strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.adversary import seesaw_separable_acceptance
from repro.exceptions import ProtocolError
from repro.protocols.base import DQMAProtocol, ProductProof
from repro.utils.rng import RngLike, ensure_rng

#: Number of cheating strategies evaluated per batched engine call.
STRATEGY_BATCH_SIZE = 256


@dataclass(frozen=True)
class StrategySearchResult:
    """Outcome of a cheating-strategy search.

    Iterable as ``(best_acceptance, best_proof)`` for backwards
    compatibility with the original two-tuple return.
    """

    best_acceptance: float
    best_proof: Optional[ProductProof]
    best_strategy: str
    num_assignments: int

    def __iter__(self) -> Iterator:
        return iter((self.best_acceptance, self.best_proof))


@dataclass(frozen=True)
class SoundnessReport:
    """Summary of a soundness experiment on one no-instance."""

    inputs: Tuple[str, ...]
    honest_acceptance: float
    best_found_acceptance: float
    optimal_entangled_acceptance: Optional[float]
    paper_bound: Optional[float]
    #: Label of the strategy achieving ``best_found_acceptance`` (``"honest"``,
    #: a per-node string assignment, or ``"seesaw"``) — makes table output
    #: auditable.
    best_strategy: Optional[str] = None

    @property
    def respects_paper_bound(self) -> bool:
        """True when every measured acceptance stays below the paper's bound."""
        if self.paper_bound is None:
            return True
        observed = self.best_found_acceptance
        if self.optimal_entangled_acceptance is not None:
            observed = max(observed, self.optimal_entangled_acceptance)
        return observed <= self.paper_bound + 1e-9


def _strategy_label(nodes: Sequence, combo: Sequence[str]) -> str:
    return ",".join(f"{node}={string}" for node, string in zip(nodes, combo))


def fingerprint_strategy_soundness(
    protocol: DQMAProtocol,
    inputs: Sequence[str],
    candidate_strings: Optional[Iterable[str]] = None,
    max_assignments: int = 4096,
    batch_size: int = STRATEGY_BATCH_SIZE,
) -> StrategySearchResult:
    """Best acceptance over proofs built from fingerprints of candidate strings.

    This is the natural cheating family for the fingerprint-based protocols:
    the prover fills every fingerprint-sized register with the fingerprint of
    some string (defaulting to the instance's own inputs), and any classical
    index / direction / relay registers with their honest contents.  The
    search enumerates assignments where all registers of a node share one
    string (the strategies the paper's soundness analyses reason about) and
    evaluates them through the engine's batched API, ``batch_size``
    strategies per stacked contraction.
    """
    fingerprints = getattr(protocol, "fingerprints", None)
    if fingerprints is None:
        raise ProtocolError("fingerprint strategy search needs a fingerprint-based protocol")
    inputs = tuple(inputs)
    if candidate_strings is None:
        candidate_strings = list(dict.fromkeys(inputs))
    candidates = list(dict.fromkeys(candidate_strings))

    honest = protocol.honest_proof(inputs)
    registers = protocol.proof_registers()
    fingerprint_registers = [reg for reg in registers if reg.dim == fingerprints.dim]
    nodes = sorted({reg.node for reg in fingerprint_registers}, key=str)

    assignments = len(candidates) ** len(nodes)
    if assignments > max_assignments:
        raise ProtocolError(
            f"{assignments} candidate assignments exceed the search limit {max_assignments}"
        )

    # One ProductProof construction per strategy (not a replaced() chain,
    # which would re-normalize every register once per replacement), with the
    # candidate fingerprints computed once up front.
    candidate_states = {string: fingerprints.state(string) for string in candidates}
    honest_states = {name: honest.state(name) for name in honest.register_names}

    def build_proof(combo: Sequence[str]) -> ProductProof:
        node_string = dict(zip(nodes, combo))
        states = dict(honest_states)
        for register in fingerprint_registers:
            states[register.name] = candidate_states[node_string[register.node]]
        return ProductProof(states)

    labels: List[str] = ["honest"]
    proofs: List[ProductProof] = [honest]
    for combo in iter_product(candidates, repeat=len(nodes)):
        labels.append(_strategy_label(nodes, combo))
        proofs.append(build_proof(combo))

    best_value = -1.0
    best_index = 0
    batch = max(int(batch_size), 1)
    for start in range(0, len(proofs), batch):
        chunk = proofs[start : start + batch]
        values = protocol.acceptance_probabilities([inputs] * len(chunk), proofs=chunk)
        local = int(np.argmax(values))
        if values[local] > best_value:
            best_value = float(values[local])
            best_index = start + local
    return StrategySearchResult(
        best_acceptance=float(best_value),
        best_proof=proofs[best_index],
        best_strategy=labels[best_index],
        num_assignments=assignments,
    )


def entangled_soundness_report(
    protocol: DQMAProtocol,
    inputs: Sequence[str],
    paper_bound: Optional[float] = None,
    run_seesaw: bool = False,
    rng: RngLike = None,
) -> SoundnessReport:
    """Full soundness report for a (small) path-protocol instance.

    Includes the honest-proof acceptance, the best structured product proof
    found (with the strategy label that achieved it), and — when the protocol
    exposes an acceptance operator — the exact optimum over entangled proofs
    (optionally cross-checked against the seesaw separable optimum).
    """
    inputs = tuple(inputs)
    honest_acceptance = protocol.acceptance_probability(inputs, None)
    try:
        search = fingerprint_strategy_soundness(protocol, inputs)
        best_found = search.best_acceptance
        best_strategy: Optional[str] = search.best_strategy
    except ProtocolError:
        best_found = honest_acceptance
        best_strategy = "honest"

    optimal = None
    if hasattr(protocol, "acceptance_operator"):
        operator = protocol.acceptance_operator(inputs)
        eigenvalues = np.linalg.eigvalsh((operator + operator.conj().T) / 2)
        optimal = float(min(max(eigenvalues[-1].real, 0.0), 1.0))
        if run_seesaw:
            dims = [register.dim for register in protocol.proof_registers()]
            seesaw_value, _ = seesaw_separable_acceptance(operator, dims, rng=ensure_rng(rng))
            if seesaw_value > best_found:
                best_found = seesaw_value
                best_strategy = "seesaw"

    if paper_bound is None and hasattr(protocol, "single_shot_soundness_gap"):
        paper_bound = 1.0 - protocol.single_shot_soundness_gap()

    return SoundnessReport(
        inputs=inputs,
        honest_acceptance=honest_acceptance,
        best_found_acceptance=best_found,
        optimal_entangled_acceptance=optimal,
        paper_bound=paper_bound,
        best_strategy=best_strategy,
    )


def repetition_soundness(single_shot_acceptance: float, repetitions: int) -> float:
    """Acceptance of a no-instance after parallel repetition: ``p^k``.

    For product proofs the copies are independent, so the best cheating
    probability of the repeated protocol is the single-shot optimum raised to
    the number of repetitions — the quantity driving the Algorithm 4 analysis.
    """
    if repetitions <= 0:
        raise ProtocolError("repetition count must be positive")
    p = min(max(single_shot_acceptance, 0.0), 1.0)
    return float(p**repetitions)
