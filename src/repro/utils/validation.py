"""Argument validation helpers used across the library."""

from __future__ import annotations

from repro.exceptions import ReproError


def require_positive_integer(value: int, name: str) -> int:
    """Raise unless ``value`` is an ``int`` greater than zero."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ReproError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ReproError(f"{name} must be positive, got {value}")
    return value


def require_integer_in_range(value: int, name: str, low: int, high: int) -> int:
    """Raise unless ``low <= value <= high``."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ReproError(f"{name} must be an integer, got {type(value).__name__}")
    if value < low or value > high:
        raise ReproError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if value < -1e-12 or value > 1 + 1e-12:
        raise ReproError(f"{name} must be a probability in [0, 1], got {value}")
    return min(max(value, 0.0), 1.0)
