"""Helpers for manipulating classical bit strings.

Inputs to the distributed problems in the paper (``EQ``, ``GT``, Hamming
distance, ...) are ``n``-bit strings.  Throughout the library bit strings are
represented as Python ``str`` objects consisting of the characters ``'0'`` and
``'1'``; the left-most character is the most significant bit, matching the
convention used in Section 5.1 of the paper for the greater-than function.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.exceptions import EncodingError


def validate_bitstring(value: str, length: int | None = None) -> str:
    """Check that ``value`` is a bit string (optionally of a given length).

    Returns the validated string so the function can be used inline.
    """
    if not isinstance(value, str):
        raise EncodingError(f"expected a bit string, got {type(value).__name__}")
    # strip() on the two allowed characters is a C-level scan, far faster
    # than a per-character Python loop on the hot validation path.
    if value.strip("01"):
        raise EncodingError(f"bit strings may only contain '0' and '1': {value!r}")
    if length is not None and len(value) != length:
        raise EncodingError(
            f"expected a bit string of length {length}, got length {len(value)}"
        )
    return value


def bits_to_int(bits: str) -> int:
    """Interpret a bit string as a non-negative integer (MSB first)."""
    validate_bitstring(bits)
    if bits == "":
        return 0
    return int(bits, 2)


def int_to_bits(value: int, length: int) -> str:
    """Encode ``value`` as a bit string of exactly ``length`` bits (MSB first)."""
    if value < 0:
        raise EncodingError("cannot encode a negative integer as a bit string")
    if length < 0:
        raise EncodingError("bit string length must be non-negative")
    if value >= (1 << length) and length >= 0 and not (value == 0 and length == 0):
        if value >> length:
            raise EncodingError(
                f"value {value} does not fit into {length} bits"
            )
    return format(value, "b").zfill(length) if length > 0 else ""


def all_bitstrings(length: int) -> Iterator[str]:
    """Yield every bit string of the given length in lexicographic order."""
    for value in range(1 << length):
        yield int_to_bits(value, length)


def hamming_weight(bits: str) -> int:
    """Number of '1' characters in the bit string."""
    validate_bitstring(bits)
    return bits.count("1")


def hamming_distance(x: str, y: str) -> int:
    """Hamming distance between two equal-length bit strings."""
    validate_bitstring(x)
    validate_bitstring(y, length=len(x))
    return sum(1 for a, b in zip(x, y) if a != b)


def xor_strings(x: str, y: str) -> str:
    """Bitwise XOR of two equal-length bit strings."""
    validate_bitstring(x)
    validate_bitstring(y, length=len(x))
    return "".join("1" if a != b else "0" for a, b in zip(x, y))


def bitstring_to_array(bits: str) -> np.ndarray:
    """Convert a bit string to a numpy array of 0/1 integers."""
    validate_bitstring(bits)
    return np.array([int(ch) for ch in bits], dtype=np.int64)


def random_bitstring(length: int, rng: np.random.Generator) -> str:
    """Draw a uniformly random bit string of the given length."""
    if length == 0:
        return ""
    bits = rng.integers(0, 2, size=length)
    return "".join(str(int(b)) for b in bits)


def distinct_random_bitstrings(
    length: int, count: int, rng: np.random.Generator
) -> List[str]:
    """Draw ``count`` distinct random bit strings of the given length."""
    if count > (1 << length):
        raise EncodingError(
            f"cannot draw {count} distinct strings of length {length}"
        )
    seen: set[str] = set()
    while len(seen) < count:
        seen.add(random_bitstring(length, rng))
    return sorted(seen)


def prefix(bits: str, index: int) -> str:
    """The prefix ``bits[0:index]`` used in the greater-than decomposition.

    Matches the paper's notation ``x[i] = x_0 ... x_{i-1}`` (Section 5.1).
    """
    validate_bitstring(bits)
    if index < 0 or index > len(bits):
        raise EncodingError(f"prefix index {index} out of range for {bits!r}")
    return bits[:index]


def concat(parts: Sequence[str]) -> str:
    """Concatenate several bit strings, validating each."""
    for part in parts:
        validate_bitstring(part)
    return "".join(parts)
