"""Typed accessor for the repository's ``REPRO_*`` environment variables.

Every ``REPRO_*`` variable the codebase reacts to is declared once in
:data:`KNOWN_VARS`; all reads and writes go through :func:`env_str` /
:func:`env_bool` / :func:`env_set` so a typo'd name fails loudly instead of
silently falling back to a default.  The ``env-var-discipline`` lint rule
(:mod:`repro.lint.rules`) statically enforces the same contract: it flags
direct ``os.environ`` access outside this module and any ``REPRO_*`` string
literal that is not registered here.

Child processes (subprocess launcher, process pools) inherit the selection
via :func:`environ_copy`, the one sanctioned way to snapshot the environment
for a worker.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one recognised ``REPRO_*`` environment variable."""

    name: str
    description: str


#: Registry of every recognised ``REPRO_*`` variable.  New knobs must be
#: declared here before anything reads them — the env-var-discipline lint
#: rule treats unregistered ``REPRO_*`` literals as typos.
KNOWN_VARS: Dict[str, EnvVar] = {
    var.name: var
    for var in (
        EnvVar("REPRO_BACKEND", "default simulation backend (see repro.engine.backends)"),
        EnvVar("REPRO_DTYPE", "contraction dtype: complex64 or complex128"),
        EnvVar("REPRO_DEVICE", "device spec for accelerator array modules (cpu / cuda / cuda:N)"),
        EnvVar("REPRO_LAUNCHER", "chunk-dispatch backend (serial / threads / process-pool / subprocess)"),
        EnvVar("REPRO_COST_BOOK", "path of the adaptive-scheduling cost book"),
        EnvVar("REPRO_SANITIZE", "truthy value enables the runtime sanitizer (repro.lint.sanitize)"),
    )
}

#: Lower-cased spellings accepted as boolean values by :func:`env_bool`.
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off", ""})


def _require_known(name: str) -> str:
    if name not in KNOWN_VARS:
        known = ", ".join(sorted(KNOWN_VARS))
        raise ProtocolError(
            f"unknown REPRO environment variable {name!r}; known variables: {known}"
        )
    return name


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """Read a registered ``REPRO_*`` variable as a string.

    Empty values count as unset (mirroring the ``or default`` idiom the
    call sites used before centralisation).  Unknown names raise
    :class:`~repro.exceptions.ProtocolError`.
    """
    value = os.environ.get(_require_known(name))
    if value is None or value == "":
        return default
    return value


def env_bool(name: str, default: bool = False) -> bool:
    """Read a registered ``REPRO_*`` variable as a boolean flag.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (case-insensitive);
    anything else raises so a misspelt value cannot silently disable a
    safety net like ``REPRO_SANITIZE``.
    """
    raw = os.environ.get(_require_known(name))
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ProtocolError(
        f"{name} must be a boolean flag (1/0/true/false/yes/no/on/off), got {raw!r}"
    )


def env_set(name: str, value: Optional[str]) -> None:
    """Export (or, with ``None``, unset) a registered ``REPRO_*`` variable.

    Used by CLI flags that win over the environment by exporting their
    selection so pool and subprocess workers inherit it.
    """
    _require_known(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = str(value)


def environ_copy() -> Dict[str, str]:
    """Snapshot the full process environment for a child process.

    The subprocess launcher passes this (plus its own additions) to
    ``Popen`` so workers inherit ``REPRO_*`` selections exactly like
    fork-based pools do.
    """
    return dict(os.environ)


__all__ = [
    "EnvVar",
    "KNOWN_VARS",
    "env_bool",
    "env_set",
    "env_str",
    "environ_copy",
]
