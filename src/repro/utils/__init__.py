"""Small shared utilities: bit-string helpers, validation, RNG handling."""

from repro.utils.bitstrings import (
    all_bitstrings,
    bits_to_int,
    bitstring_to_array,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    random_bitstring,
    validate_bitstring,
    xor_strings,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    require_integer_in_range,
    require_positive_integer,
    require_probability,
)

__all__ = [
    "all_bitstrings",
    "bits_to_int",
    "bitstring_to_array",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "random_bitstring",
    "validate_bitstring",
    "xor_strings",
    "ensure_rng",
    "require_integer_in_range",
    "require_positive_integer",
    "require_probability",
]
