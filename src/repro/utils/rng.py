"""Random-number-generator plumbing.

All stochastic code in the library accepts either a :class:`numpy.random.Generator`,
an integer seed, or ``None`` and normalises it through :func:`ensure_rng` so
simulations are reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed-or-generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Spawn ``count`` statistically independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def maybe_seeded(seed: Optional[int]) -> np.random.Generator:
    """Alias of :func:`ensure_rng` kept for readability at call sites."""
    return ensure_rng(seed)
